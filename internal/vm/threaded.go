package vm

import (
	"fmt"
	"time"
	"unsafe"

	"repro/internal/mir"
)

// This file is the EngineThreaded tier: at Start the machine translates
// every basic block into threaded code — an array of pre-bound closures
// plus, wherever at least two consecutive instructions allow it, a
// fused superinstruction chain that retires the whole run with one
// indirect call. Inside a chain, maximal runs of pure register
// instructions (const/mov/arithmetic/compares — no traps, no observers)
// are compacted into shape-specialized micro-ops executed by a lean
// loop with batched step accounting; side-effecting instructions keep
// per-instruction accounting and exact frame pc so backtraces, fault
// clocks and handler-visible Steps() match the interpreter bit for bit.
//
// Determinism contract with the interpreter (asserted by conformance
// and the differential tests): a chain is only entered when the
// remaining quantum covers all of it, and every instruction that can
// transfer control (branch, user call, return) may only terminate a
// chain — so the threaded tier retires exactly the interpreter's
// instruction sequence per scheduler slice, and the shared RNG, report
// and counter streams never diverge.

// tsig is a threaded-op outcome signal.
type tsig uint8

const (
	sigNext  tsig = iota // fall through to the next instruction
	sigJump              // fr.block/fr.pc updated within the frame
	sigFrame             // frame pushed or popped; re-derive windows
	sigStop              // thread blocked or finished, or the run failed
)

// texec is the threaded tier's execution context. One per machine,
// re-pointed at the running thread's register windows each slice, so a
// steady-state quantum allocates nothing.
type texec struct {
	m      *Machine
	t      *thread
	fr     *frame
	regs   []uint64
	shadow []uint64
}

// topFn is one threaded operation: a pre-bound closure over the
// instruction's static operands. Closures capture only build-time
// constants, never thread state, so one build serves every thread.
type topFn func(x *texec) tsig

// tEntry is one instruction slot of threaded code.
type tEntry struct {
	fn     topFn  // single-instruction closure (resume/tail fallback)
	chain  topFn  // superinstruction starting here, or nil
	chain4 topFn  // short-chain twin for quantum tails, or nil
	pure   []puOp // maximal pure run starting here, or nil
	n      int32  // instructions the chain covers
	n4     int32  // instructions the short chain covers
	op     mir.Op // opcode, for the dispatch loop's step accounting
}

// tBlock is one basic block of threaded code: the per-instruction
// entries plus per-opcode prefix sums over the block's pure positions,
// so any pure-run prefix accounts in O(distinct opcodes) work.
type tBlock struct {
	entries []tEntry
	pureOps []mir.Op
	cum     [][]uint32 // cum[oi][pos] = #pureOps[oi] in instrs [0,pos)
}

// maxChain bounds a superinstruction's length. It must stay at or below
// the minimum scheduler slice (Quantum/2+1, i.e. 33 by default) so a
// freshly granted quantum can always enter a chain instead of
// single-stepping through it.
const maxChain = 32

// Micro-op kinds for pure register instructions. The RR band and the
// RI band mirror the OpAdd..OpGe opcode order, so decode is arithmetic
// and the shadow rule is a band test: RR merges both operand shadows,
// RI propagates the register operand's shadow.
const (
	puNop uint8 = iota
	puConst
	puMov
	puGen // generic operand decode (non-commutative const-reg shapes)
	puAddRR
	puSubRR
	puMulRR
	puDivRR
	puRemRR
	puAndRR
	puOrRR
	puXorRR
	puShlRR
	puShrRR
	puEqRR
	puNeRR
	puLtRR
	puLeRR
	puGtRR
	puGeRR
	puAddRI
	puSubRI
	puMulRI
	puDivRI
	puRemRI
	puAndRI
	puOrRI
	puXorRI
	puShlRI
	puShrRI
	puEqRI
	puNeRI
	puLtRI
	puLeRI
	puGtRI
	puGeRI
)

// puOp is one decoded pure micro-op.
type puOp struct {
	kind uint8
	op   mir.Op // puGen only
	dst  int32
	a    int32  // register index (puGen: -1 means use aImm)
	b    int32  // register index (puGen: -1 means use bImm)
	aImm uint64 // puConst value; puGen const A
	bImm uint64 // RI immediate; puGen const B
}

// opCount is a batched per-opcode step delta for a pure segment.
type opCount struct {
	op mir.Op
	n  uint64
}

// tSeg is one element of a superinstruction: either a compacted pure
// run (fn nil) or a pre-bound side-effecting closure.
type tSeg struct {
	pure   []puOp
	nPure  uint64
	counts []opCount
	fn     topFn
	op     mir.Op
	pc     int32
}

// pureIns reports whether an instruction only reads and writes
// registers: it cannot trap, block, transfer control or call out, so
// its accounting can be batched.
func pureIns(ins *linkedInstr) bool {
	switch ins.Op {
	case mir.OpNop, mir.OpConst, mir.OpMov:
		return true
	}
	return ins.Op.IsBinOp() || ins.Op.IsCmp()
}

// chainMid reports whether an instruction may appear in the middle of a
// chain: everything that falls through to the next pc (possibly after
// blocking and retrying, like OpLock) qualifies.
func chainMid(ins *linkedInstr) bool {
	switch ins.Op {
	case mir.OpLoad, mir.OpStore, mir.OpAlloca, mir.OpHook,
		mir.OpLock, mir.OpUnlock, mir.OpSpawn, mir.OpJoin:
		return true
	case mir.OpCall:
		return ins.UserFn < 0 // library models return inline
	}
	return pureIns(ins)
}

// chainFinal reports whether an instruction transfers control and may
// therefore only terminate a chain.
func chainFinal(ins *linkedInstr) bool {
	switch ins.Op {
	case mir.OpBr, mir.OpCondBr, mir.OpRet, mir.OpRetVal:
		return true
	case mir.OpCall:
		return ins.UserFn >= 0
	}
	return false
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// evalBin mirrors the interpreter's binop/compare semantics exactly:
// trap-free signed division, shift counts masked to 63, signed
// compares. It doubles as the constant folder for const-const shapes.
func evalBin(op mir.Op, a, b uint64) uint64 {
	switch op {
	case mir.OpAdd:
		return a + b
	case mir.OpSub:
		return a - b
	case mir.OpMul:
		return a * b
	case mir.OpDiv:
		if int64(b) == 0 {
			return 0
		}
		return uint64(int64(a) / int64(b))
	case mir.OpRem:
		if int64(b) == 0 {
			return 0
		}
		return uint64(int64(a) % int64(b))
	case mir.OpAnd:
		return a & b
	case mir.OpOr:
		return a | b
	case mir.OpXor:
		return a ^ b
	case mir.OpShl:
		return a << (b & 63)
	case mir.OpShr:
		return a >> (b & 63)
	case mir.OpEq:
		return b2u(int64(a) == int64(b))
	case mir.OpNe:
		return b2u(int64(a) != int64(b))
	case mir.OpLt:
		return b2u(int64(a) < int64(b))
	case mir.OpLe:
		return b2u(int64(a) <= int64(b))
	case mir.OpGt:
		return b2u(int64(a) > int64(b))
	case mir.OpGe:
		return b2u(int64(a) >= int64(b))
	}
	return 0
}

// decodePure compiles one pure instruction into a micro-op,
// shape-specializing on operand constness: const-const folds, reg-reg
// and reg-const take the dedicated bands, and const-reg is either
// normalized into the RI band (commutative ops, flipped compares) or
// kept generic.
func decodePure(ins *linkedInstr) puOp {
	switch ins.Op {
	case mir.OpNop:
		return puOp{kind: puNop}
	case mir.OpConst:
		return puOp{kind: puConst, dst: int32(ins.Dst), aImm: uint64(ins.Imm)}
	case mir.OpMov:
		if ins.A.IsConst {
			return puOp{kind: puConst, dst: int32(ins.Dst), aImm: uint64(ins.A.Const)}
		}
		return puOp{kind: puMov, dst: int32(ins.Dst), a: int32(ins.A.Reg)}
	}
	a, b := ins.A, ins.B
	dst := int32(ins.Dst)
	switch {
	case a.IsConst && b.IsConst:
		// Shadow of a const operand is 0, so the fold's 0 shadow matches.
		return puOp{kind: puConst, dst: dst, aImm: evalBin(ins.Op, uint64(a.Const), uint64(b.Const))}
	case !a.IsConst && !b.IsConst:
		return puOp{kind: puAddRR + uint8(ins.Op-mir.OpAdd), dst: dst, a: int32(a.Reg), b: int32(b.Reg)}
	case !a.IsConst: // reg OP const
		return puOp{kind: puAddRI + uint8(ins.Op-mir.OpAdd), dst: dst, a: int32(a.Reg), bImm: uint64(b.Const)}
	}
	// const OP reg: commute or flip into the RI band where semantics
	// (and the shadow rule — the reg operand's shadow propagates either
	// way) allow, otherwise fall back to generic operand decode.
	ri := func(op mir.Op) puOp {
		return puOp{kind: puAddRI + uint8(op-mir.OpAdd), dst: dst, a: int32(b.Reg), bImm: uint64(a.Const)}
	}
	switch ins.Op {
	case mir.OpAdd, mir.OpMul, mir.OpAnd, mir.OpOr, mir.OpXor, mir.OpEq, mir.OpNe:
		return ri(ins.Op)
	case mir.OpLt:
		return ri(mir.OpGt)
	case mir.OpLe:
		return ri(mir.OpGe)
	case mir.OpGt:
		return ri(mir.OpLt)
	case mir.OpGe:
		return ri(mir.OpLe)
	}
	return puOp{kind: puGen, op: ins.Op, dst: dst, a: -1, b: int32(b.Reg), aImm: uint64(a.Const)}
}

// runPure retires a compacted pure run. The caller has already batched
// the step and per-opcode accounting; nothing in here can trap, block
// or observe the machine.
func runPure(x *texec, ops []puOp, track bool) {
	if track {
		runPureTrack(x, ops)
		return
	}
	runPureFast(x, ops)
}

// runPureFast is the shadow-off micro-op sweep: no shadow loads or
// stores anywhere in the loop, so the common untracked configuration
// pays only for the value computation and the jump-table dispatch.
// Each band case retires the whole run of same-kind micro-ops in a
// tight inner loop, so the indirect jump-table branch — the classic
// interpreter misprediction sink — fires once per run, not once per
// instruction.

// rp is the unchecked register accessor for the micro-op sweeps.
// Soundness: mir.Verify rejects any program with a register operand
// outside [0, NRegs) at load time, decodePure only emits verified
// operands, and the regs window handed to texec is always NRegs wide —
// so every index rp sees is in range by construction.
func rp(base unsafe.Pointer, i int32) *uint64 {
	return (*uint64)(unsafe.Add(base, uintptr(uint32(i))*8))
}

func runPureFast(x *texec, ops []puOp) {
	base := unsafe.Pointer(unsafe.SliceData(x.regs))
	n := len(ops)
	for i := 0; i < n; {
		u := &ops[i]
		switch u.kind {
		case puNop:
			i++
		case puConst:
			for {
				*rp(base, u.dst) = u.aImm
				if i++; i == n || ops[i].kind != puConst {
					break
				}
				u = &ops[i]
			}
		case puMov:
			for {
				*rp(base, u.dst) = *rp(base, u.a)
				if i++; i == n || ops[i].kind != puMov {
					break
				}
				u = &ops[i]
			}
		case puGen:
			va, vb := u.aImm, u.bImm
			if u.a >= 0 {
				va = *rp(base, u.a)
			}
			if u.b >= 0 {
				vb = *rp(base, u.b)
			}
			*rp(base, u.dst) = evalBin(u.op, va, vb)
			i++
		case puAddRR:
			for {
				*rp(base, u.dst) = *rp(base, u.a) + *rp(base, u.b)
				if i++; i == n || ops[i].kind != puAddRR {
					break
				}
				u = &ops[i]
			}
		case puSubRR:
			for {
				*rp(base, u.dst) = *rp(base, u.a) - *rp(base, u.b)
				if i++; i == n || ops[i].kind != puSubRR {
					break
				}
				u = &ops[i]
			}
		case puMulRR:
			for {
				*rp(base, u.dst) = *rp(base, u.a) * *rp(base, u.b)
				if i++; i == n || ops[i].kind != puMulRR {
					break
				}
				u = &ops[i]
			}
		case puDivRR:
			*rp(base, u.dst) = evalBin(mir.OpDiv, *rp(base, u.a), *rp(base, u.b))
			i++
		case puRemRR:
			*rp(base, u.dst) = evalBin(mir.OpRem, *rp(base, u.a), *rp(base, u.b))
			i++
		case puAndRR:
			for {
				*rp(base, u.dst) = *rp(base, u.a) & *rp(base, u.b)
				if i++; i == n || ops[i].kind != puAndRR {
					break
				}
				u = &ops[i]
			}
		case puOrRR:
			for {
				*rp(base, u.dst) = *rp(base, u.a) | *rp(base, u.b)
				if i++; i == n || ops[i].kind != puOrRR {
					break
				}
				u = &ops[i]
			}
		case puXorRR:
			for {
				*rp(base, u.dst) = *rp(base, u.a) ^ *rp(base, u.b)
				if i++; i == n || ops[i].kind != puXorRR {
					break
				}
				u = &ops[i]
			}
		case puShlRR:
			for {
				*rp(base, u.dst) = *rp(base, u.a) << (*rp(base, u.b) & 63)
				if i++; i == n || ops[i].kind != puShlRR {
					break
				}
				u = &ops[i]
			}
		case puShrRR:
			for {
				*rp(base, u.dst) = *rp(base, u.a) >> (*rp(base, u.b) & 63)
				if i++; i == n || ops[i].kind != puShrRR {
					break
				}
				u = &ops[i]
			}
		case puEqRR:
			*rp(base, u.dst) = b2u(int64(*rp(base, u.a)) == int64(*rp(base, u.b)))
			i++
		case puNeRR:
			*rp(base, u.dst) = b2u(int64(*rp(base, u.a)) != int64(*rp(base, u.b)))
			i++
		case puLtRR:
			*rp(base, u.dst) = b2u(int64(*rp(base, u.a)) < int64(*rp(base, u.b)))
			i++
		case puLeRR:
			*rp(base, u.dst) = b2u(int64(*rp(base, u.a)) <= int64(*rp(base, u.b)))
			i++
		case puGtRR:
			*rp(base, u.dst) = b2u(int64(*rp(base, u.a)) > int64(*rp(base, u.b)))
			i++
		case puGeRR:
			*rp(base, u.dst) = b2u(int64(*rp(base, u.a)) >= int64(*rp(base, u.b)))
			i++
		case puAddRI:
			for {
				*rp(base, u.dst) = *rp(base, u.a) + u.bImm
				if i++; i == n || ops[i].kind != puAddRI {
					break
				}
				u = &ops[i]
			}
		case puSubRI:
			for {
				*rp(base, u.dst) = *rp(base, u.a) - u.bImm
				if i++; i == n || ops[i].kind != puSubRI {
					break
				}
				u = &ops[i]
			}
		case puMulRI:
			for {
				*rp(base, u.dst) = *rp(base, u.a) * u.bImm
				if i++; i == n || ops[i].kind != puMulRI {
					break
				}
				u = &ops[i]
			}
		case puDivRI:
			*rp(base, u.dst) = evalBin(mir.OpDiv, *rp(base, u.a), u.bImm)
			i++
		case puRemRI:
			*rp(base, u.dst) = evalBin(mir.OpRem, *rp(base, u.a), u.bImm)
			i++
		case puAndRI:
			for {
				*rp(base, u.dst) = *rp(base, u.a) & u.bImm
				if i++; i == n || ops[i].kind != puAndRI {
					break
				}
				u = &ops[i]
			}
		case puOrRI:
			for {
				*rp(base, u.dst) = *rp(base, u.a) | u.bImm
				if i++; i == n || ops[i].kind != puOrRI {
					break
				}
				u = &ops[i]
			}
		case puXorRI:
			for {
				*rp(base, u.dst) = *rp(base, u.a) ^ u.bImm
				if i++; i == n || ops[i].kind != puXorRI {
					break
				}
				u = &ops[i]
			}
		case puShlRI:
			for {
				*rp(base, u.dst) = *rp(base, u.a) << (u.bImm & 63)
				if i++; i == n || ops[i].kind != puShlRI {
					break
				}
				u = &ops[i]
			}
		case puShrRI:
			for {
				*rp(base, u.dst) = *rp(base, u.a) >> (u.bImm & 63)
				if i++; i == n || ops[i].kind != puShrRI {
					break
				}
				u = &ops[i]
			}
		case puEqRI:
			*rp(base, u.dst) = b2u(int64(*rp(base, u.a)) == int64(u.bImm))
			i++
		case puNeRI:
			*rp(base, u.dst) = b2u(int64(*rp(base, u.a)) != int64(u.bImm))
			i++
		case puLtRI:
			*rp(base, u.dst) = b2u(int64(*rp(base, u.a)) < int64(u.bImm))
			i++
		case puLeRI:
			*rp(base, u.dst) = b2u(int64(*rp(base, u.a)) <= int64(u.bImm))
			i++
		case puGtRI:
			*rp(base, u.dst) = b2u(int64(*rp(base, u.a)) > int64(u.bImm))
			i++
		case puGeRI:
			*rp(base, u.dst) = b2u(int64(*rp(base, u.a)) >= int64(u.bImm))
			i++
		default:
			i++
		}
	}
}

// runPureTrack is the shadow-tracking twin of runPureFast.
func runPureTrack(x *texec, ops []puOp) {
	regs := x.regs
	shadow := x.shadow
	for i := range ops {
		u := &ops[i]
		var v uint64
		switch u.kind {
		case puNop:
			continue
		case puConst:
			regs[u.dst] = u.aImm
			shadow[u.dst] = 0
			continue
		case puMov:
			regs[u.dst] = regs[u.a]
			shadow[u.dst] = shadow[u.a]
			continue
		case puGen:
			va, vb := u.aImm, u.bImm
			var s uint64
			if u.a >= 0 {
				va = regs[u.a]
				s = shadow[u.a]
			}
			if u.b >= 0 {
				vb = regs[u.b]
				s |= shadow[u.b]
			}
			regs[u.dst] = evalBin(u.op, va, vb)
			shadow[u.dst] = s
			continue
		case puAddRR:
			v = regs[u.a] + regs[u.b]
		case puSubRR:
			v = regs[u.a] - regs[u.b]
		case puMulRR:
			v = regs[u.a] * regs[u.b]
		case puDivRR:
			v = evalBin(mir.OpDiv, regs[u.a], regs[u.b])
		case puRemRR:
			v = evalBin(mir.OpRem, regs[u.a], regs[u.b])
		case puAndRR:
			v = regs[u.a] & regs[u.b]
		case puOrRR:
			v = regs[u.a] | regs[u.b]
		case puXorRR:
			v = regs[u.a] ^ regs[u.b]
		case puShlRR:
			v = regs[u.a] << (regs[u.b] & 63)
		case puShrRR:
			v = regs[u.a] >> (regs[u.b] & 63)
		case puEqRR:
			v = b2u(int64(regs[u.a]) == int64(regs[u.b]))
		case puNeRR:
			v = b2u(int64(regs[u.a]) != int64(regs[u.b]))
		case puLtRR:
			v = b2u(int64(regs[u.a]) < int64(regs[u.b]))
		case puLeRR:
			v = b2u(int64(regs[u.a]) <= int64(regs[u.b]))
		case puGtRR:
			v = b2u(int64(regs[u.a]) > int64(regs[u.b]))
		case puGeRR:
			v = b2u(int64(regs[u.a]) >= int64(regs[u.b]))
		case puAddRI:
			v = regs[u.a] + u.bImm
		case puSubRI:
			v = regs[u.a] - u.bImm
		case puMulRI:
			v = regs[u.a] * u.bImm
		case puDivRI:
			v = evalBin(mir.OpDiv, regs[u.a], u.bImm)
		case puRemRI:
			v = evalBin(mir.OpRem, regs[u.a], u.bImm)
		case puAndRI:
			v = regs[u.a] & u.bImm
		case puOrRI:
			v = regs[u.a] | u.bImm
		case puXorRI:
			v = regs[u.a] ^ u.bImm
		case puShlRI:
			v = regs[u.a] << (u.bImm & 63)
		case puShrRI:
			v = regs[u.a] >> (u.bImm & 63)
		case puEqRI:
			v = b2u(int64(regs[u.a]) == int64(u.bImm))
		case puNeRI:
			v = b2u(int64(regs[u.a]) != int64(u.bImm))
		case puLtRI:
			v = b2u(int64(regs[u.a]) < int64(u.bImm))
		case puLeRI:
			v = b2u(int64(regs[u.a]) <= int64(u.bImm))
		case puGtRI:
			v = b2u(int64(regs[u.a]) > int64(u.bImm))
		case puGeRI:
			v = b2u(int64(regs[u.a]) >= int64(u.bImm))
		}
		regs[u.dst] = v
		if u.kind >= puAddRI {
			shadow[u.dst] = shadow[u.a]
		} else {
			shadow[u.dst] = shadow[u.a] | shadow[u.b]
		}
	}
}

// buildThreaded translates every linked function into threaded code.
// Called once from Start when Config.Engine is EngineThreaded; Start is
// the one place allowed to allocate, the per-quantum path is not.
func (m *Machine) buildThreaded() {
	track := m.cfg.TrackShadow
	for _, fn := range m.funcs {
		th := make([]tBlock, len(fn.blocks))
		for bi, blk := range fn.blocks {
			entries := make([]tEntry, len(blk))
			decoded := make([]puOp, len(blk))
			for ii := range blk {
				entries[ii] = tEntry{fn: m.buildOp(&blk[ii], track), op: blk[ii].Op}
				if pureIns(&blk[ii]) {
					decoded[ii] = decodePure(&blk[ii])
				}
			}
			// Every pure pc gets its maximal pure run: the dispatch loop
			// executes these inline (clamped to the remaining quantum),
			// so pure code never pays a closure call or a chain-length
			// alignment penalty. Runs are unbounded — the quantum is the
			// only cap that matters, applied at dispatch time.
			end := 0
			for ii := len(blk) - 1; ii >= 0; ii-- {
				if !pureIns(&blk[ii]) {
					end = 0
					continue
				}
				if end == 0 {
					end = ii + 1
				}
				entries[ii].pure = decoded[ii:end]
			}
			// Per-opcode prefix sums over the block's pure positions:
			// the accounting for any run prefix [pc, pc+k) is a handful
			// of subtractions regardless of k, so quantum-clamped
			// partial runs cost the same as full ones.
			var pureOps []mir.Op
			for ii := range blk {
				if !pureIns(&blk[ii]) {
					continue
				}
				seen := false
				for _, op := range pureOps {
					if op == blk[ii].Op {
						seen = true
						break
					}
				}
				if !seen {
					pureOps = append(pureOps, blk[ii].Op)
				}
			}
			cum := make([][]uint32, len(pureOps))
			for oi, op := range pureOps {
				row := make([]uint32, len(blk)+1)
				for ii := range blk {
					row[ii+1] = row[ii]
					if blk[ii].Op == op && pureIns(&blk[ii]) {
						row[ii+1]++
					}
				}
				cum[oi] = row
			}
			m.fuseBlock(blk, entries, decoded, track)
			th[bi] = tBlock{entries: entries, pureOps: pureOps, cum: cum}
		}
		fn.threaded = th
	}
}

// fuseBlock builds a superinstruction chain starting at every pc that
// admits one: the chain covers the longest (bounded) chainable run from
// there and may end with — but never step past — a control transfer.
// Chains overlap so that wherever a quantum finds itself — after a
// branch, a mid-block resume, or the previous chain — the very next
// dispatch can fuse again; the dispatch loop falls back to single ops
// only when the remaining quantum no longer covers a whole chain.
func (m *Machine) fuseBlock(blk []linkedInstr, entries []tEntry, decoded []puOp, track bool) {
	for i := range blk {
		if pureIns(&blk[i]) {
			// Pure pcs are served by their inline run; a chain here
			// would never be consulted.
			continue
		}
		j := i
		for j < len(blk) && j-i < maxChain {
			if chainFinal(&blk[j]) {
				j++
				break
			}
			if !chainMid(&blk[j]) {
				break
			}
			j++
		}
		if j-i >= 2 {
			entries[i].chain = m.buildChain(blk[i:j], i, entries, decoded, track)
			entries[i].n = int32(j - i)
			// A short twin picks up quantum tails: when the remaining
			// slice no longer covers the full chain, the dispatch loop
			// can still fuse four at a time instead of single-stepping
			// the rest of the quantum.
			if j-i > 4 {
				entries[i].chain4 = m.buildChain(blk[i:i+4], i, entries, decoded, track)
				entries[i].n4 = 4
			} else {
				entries[i].chain4 = entries[i].chain
				entries[i].n4 = entries[i].n
			}
		}
	}
}

// buildChain fuses ins (blk[base:base+len]) into one superinstruction:
// pure runs are compacted into micro-op segments (sub-slices of the
// block's shared decode array) with batched accounting, side-effecting
// instructions reuse their single-op closures with exact
// per-instruction pc and counters. The caller guarantees the whole
// chain fits in the remaining quantum, so any non-sigStop result means
// every covered instruction retired.
func (m *Machine) buildChain(ins []linkedInstr, base int, entries []tEntry, decoded []puOp, track bool) topFn {
	var segs []tSeg
	pureFrom := -1
	flush := func(end int) {
		if pureFrom < 0 {
			return
		}
		var counts []opCount
		for k := pureFrom; k < end; k++ {
			op := ins[k].Op
			found := false
			for c := range counts {
				if counts[c].op == op {
					counts[c].n++
					found = true
					break
				}
			}
			if !found {
				counts = append(counts, opCount{op: op, n: 1})
			}
		}
		segs = append(segs, tSeg{
			pure:   decoded[base+pureFrom : base+end],
			nPure:  uint64(end - pureFrom),
			counts: counts,
		})
		pureFrom = -1
	}
	for k := range ins {
		if pureIns(&ins[k]) {
			if pureFrom < 0 {
				pureFrom = k
			}
		} else {
			flush(k)
			segs = append(segs, tSeg{fn: entries[base+k].fn, op: ins[k].Op, pc: int32(base + k)})
		}
	}
	flush(len(ins))
	chainSegs := segs
	if len(chainSegs) == 1 && chainSegs[0].fn == nil {
		// Fully pure superinstruction — the steady-state shape in
		// compute-dominated blocks. One batched accounting update, one
		// micro-op sweep, no segment walk.
		s := chainSegs[0]
		if track {
			return func(x *texec) tsig {
				m := x.m
				m.steps += s.nPure
				for _, c := range s.counts {
					m.opCounts[c.op] += c.n
				}
				runPureTrack(x, s.pure)
				return sigNext
			}
		}
		return func(x *texec) tsig {
			m := x.m
			m.steps += s.nPure
			for _, c := range s.counts {
				m.opCounts[c.op] += c.n
			}
			runPureFast(x, s.pure)
			return sigNext
		}
	}
	return func(x *texec) tsig {
		m := x.m
		for si := range chainSegs {
			s := &chainSegs[si]
			if s.fn == nil {
				m.steps += s.nPure
				for _, c := range s.counts {
					m.opCounts[c.op] += c.n
				}
				runPure(x, s.pure, track)
				continue
			}
			// Exact pc before every side-effecting op: traps, blocking
			// retries and handler backtraces see interpreter-identical
			// frame state.
			x.fr.pc = int(s.pc)
			m.steps++
			m.opCounts[s.op]++
			if sig := s.fn(x); sig != sigNext {
				return sig
			}
		}
		return sigNext
	}
}

// buildOp pre-binds one instruction into a closure. Every closure
// captures only instruction-static data (operand specs, resolved
// callees, handler functions), never thread state: one build serves all
// threads and the per-quantum path allocates nothing.
func (m *Machine) buildOp(ins *linkedInstr, track bool) topFn {
	if pureIns(ins) {
		ops := []puOp{decodePure(ins)}
		return func(x *texec) tsig {
			runPure(x, ops, track)
			return sigNext
		}
	}
	switch ins.Op {
	case mir.OpBr:
		tgt := ins.Target
		return func(x *texec) tsig {
			x.fr.block = tgt
			x.fr.pc = 0
			return sigJump
		}

	case mir.OpCondBr:
		aOp := ins.A
		tgt, els := ins.Target, ins.Else
		return func(x *texec) tsig {
			if opVal(x.regs, aOp) != 0 {
				x.fr.block = tgt
			} else {
				x.fr.block = els
			}
			x.fr.pc = 0
			return sigJump
		}

	case mir.OpLoad:
		aOp := ins.A
		dst := ins.Dst
		size := ins.Size
		return func(x *texec) tsig {
			m := x.m
			a := opVal(x.regs, aOp)
			if a > m.mem.byteMask {
				m.failf(KindTrap, "load from out-of-range address %#x", a)
				return sigStop
			}
			if straddles(a, size) {
				m.failf(KindTrap, "%d-byte load at %#x straddles a word boundary", size, a)
				return sigStop
			}
			x.regs[dst] = m.mem.load(a, size)
			if track {
				x.shadow[dst] = 0
			}
			return sigNext
		}

	case mir.OpStore:
		aOp, bOp := ins.A, ins.B
		size := ins.Size
		return func(x *texec) tsig {
			m := x.m
			a := opVal(x.regs, aOp)
			if a > m.mem.byteMask {
				m.failf(KindTrap, "store to out-of-range address %#x", a)
				return sigStop
			}
			m.mem.store(a, opVal(x.regs, bOp), size)
			return sigNext
		}

	case mir.OpAlloca:
		sz := (uint64(ins.Imm) + 7) &^ 7
		dst := ins.Dst
		return func(x *texec) tsig {
			t := x.t
			if t.sp-sz < t.stackLow {
				x.m.failf(KindTrap, "stack overflow in %s", x.fr.fn.name)
				return sigStop
			}
			t.sp -= sz
			x.regs[dst] = t.sp
			if track {
				x.shadow[dst] = 0
			}
			return sigNext
		}

	case mir.OpCall:
		argOps := ins.Args
		dst := ins.Dst
		if ins.UserFn >= 0 {
			ufn := ins.UserFn
			return func(x *texec) tsig {
				t := x.t
				args := t.libArgs[:0]
				for _, a := range argOps {
					args = append(args, opVal(x.regs, a))
				}
				var shs []uint64
				if track {
					// Pooled: pushFrame copies into the callee's slab
					// before this buffer is reused.
					shs = t.libShs[:0]
					for _, a := range argOps {
						shs = append(shs, opSh(x.shadow, a))
					}
				}
				x.fr.pc++ // resume after the call
				x.m.pushFrame(t, ufn, args, shs, dst)
				return sigFrame
			}
		}
		lib := ins.Lib
		return func(x *texec) tsig {
			t := x.t
			args := t.libArgs[:0]
			for _, a := range argOps {
				args = append(args, opVal(x.regs, a))
			}
			r := lib(x.m, t, args)
			if dst != mir.NoReg {
				x.regs[dst] = r
				if track {
					x.shadow[dst] = 0
				}
			}
			if x.m.err != nil {
				return sigStop
			}
			return sigNext
		}

	case mir.OpRet, mir.OpRetVal:
		isVal := ins.Op == mir.OpRetVal
		aOp := ins.A
		return func(x *texec) tsig {
			m, t, fr := x.m, x.t, x.fr
			if isVal {
				t.retVal = opVal(x.regs, aOp)
				if track {
					t.retShadow = opSh(x.shadow, aOp)
				} else {
					t.retShadow = 0
				}
			} else {
				t.retVal, t.retShadow = 0, 0
			}
			t.sp = fr.savedSP
			retReg := fr.retReg
			t.frames = t.frames[:len(t.frames)-1]
			if len(t.frames) == 0 {
				t.state = tDone
				m.nlive--
				m.wakeJoiners(t.id)
				return sigStop
			}
			if retReg != mir.NoReg {
				parent := &t.frames[len(t.frames)-1]
				t.regSlab[parent.regBase+int(retReg)] = t.retVal
				if track {
					t.shadowSlab[parent.regBase+int(retReg)] = t.retShadow
				}
			}
			return sigFrame
		}

	case mir.OpLock:
		aOp := ins.A
		return func(x *texec) tsig {
			m, t := x.m, x.t
			v := opVal(x.regs, aOp)
			l := m.locks[v]
			if l == nil {
				l = &lockState{}
				m.locks[v] = l
			}
			switch {
			case !l.held:
				l.held = true
				l.owner = t.id
				return sigNext
			case l.owner == t.id:
				m.failf(KindTrap, "recursive lock %#x by thread %d", v, t.id)
				return sigStop
			default:
				t.state = tBlockedLock
				t.waitLock = v
				return sigStop // retry this instruction when woken
			}
		}

	case mir.OpUnlock:
		aOp := ins.A
		return func(x *texec) tsig {
			m, t := x.m, x.t
			v := opVal(x.regs, aOp)
			l := m.locks[v]
			if l == nil || !l.held || l.owner != t.id {
				m.failf(KindTrap, "unlock of lock %#x not held by thread %d", v, t.id)
				return sigStop
			}
			l.held = false
			m.wakeLockWaiters(v)
			return sigNext
		}

	case mir.OpSpawn:
		ufn := ins.UserFn
		argOps := ins.Args
		dst := ins.Dst
		return func(x *texec) tsig {
			m, t := x.m, x.t
			args := t.libArgs[:0]
			for _, a := range argOps {
				args = append(args, opVal(x.regs, a))
			}
			var shs []uint64
			if track {
				shs = t.libShs[:0]
				for _, a := range argOps {
					shs = append(shs, opSh(x.shadow, a))
				}
			}
			nt := m.newThread(ufn, args, shs)
			if m.err != nil {
				return sigStop
			}
			x.regs[dst] = uint64(nt.id)
			if track {
				x.shadow[dst] = 0
			}
			m.cur = t // newThread does not switch execution
			return sigNext
		}

	case mir.OpJoin:
		aOp := ins.A
		return func(x *texec) tsig {
			m, t := x.m, x.t
			target := int(opVal(x.regs, aOp))
			if target < 0 || target >= len(m.threads) {
				m.failf(KindTrap, "join on invalid thread handle %d", target)
				return sigStop
			}
			if m.threads[target].state != tDone {
				t.state = tBlockedJoin
				t.joinTarget = target
				return sigStop // retry when woken
			}
			return sigNext
		}

	case mir.OpHook:
		h := ins.Hook
		hargs := h.Args
		handlerID := h.HandlerID
		metaDst := h.MetaDst
		name := h.Name
		var hfn HandlerFn
		if handlerID >= 0 && handlerID < len(m.Handlers) {
			hfn = m.Handlers[handlerID]
		}
		return func(x *texec) tsig {
			m, t := x.m, x.t
			args := t.hookArgs[:0]
			for _, a := range hargs {
				switch a.Kind {
				case mir.HookConst:
					args = append(args, uint64(a.Const))
				case mir.HookReg:
					args = append(args, x.regs[a.Reg])
				case mir.HookRegMeta:
					if track {
						args = append(args, x.shadow[a.Reg])
					} else {
						args = append(args, 0)
					}
				case mir.HookThread:
					args = append(args, uint64(t.id))
				}
			}
			m.hookCalls++
			m.hookPer[handlerID]++
			if f := m.cfg.Faults.HandlerPanicNth; f != 0 && m.hookCalls == f {
				m.faultsFired++
				m.cfg.Trace.Instant("vm", "fault.handler_panic", m.cfg.TraceTID)
				panic(fmt.Sprintf("injected fault: handler panic at hook dispatch #%d (%s)", f, name))
			}
			var r uint64
			if m.hookNS != nil {
				t0 := time.Now()
				r = hfn(m, uint64(t.id), args)
				m.hookNS[handlerID] += uint64(time.Since(t0))
			} else {
				r = hfn(m, uint64(t.id), args)
			}
			if metaDst != mir.NoReg && track {
				x.shadow[metaDst] = r
			}
			return sigNext
		}
	}

	op := ins.Op
	return func(x *texec) tsig {
		x.m.failf(KindTrap, "invalid opcode %s", op)
		return sigStop
	}
}

// runThreaded is the threaded tier's slice executor — the counterpart
// of runThread, driven by the same RunQuantum scheduler. The dispatch
// loop accounts single-stepped instructions itself; chains account
// internally (batched for pure segments, per-op otherwise) and are
// entered only when the remaining quantum covers them whole.
func (m *Machine) runThreaded(t *thread, quantum int) {
	m.cur = t
	x := m.tx
	x.t = t
	track := m.cfg.TrackShadow

frameLoop:
	for quantum > 0 && t.state == tRunnable && m.err == nil {
		fr := &t.frames[len(t.frames)-1]
		x.fr = fr
		x.regs = t.regSlab[fr.regBase : fr.regBase+fr.fn.nregs]
		if m.cfg.TrackShadow {
			x.shadow = t.shadowSlab[fr.regBase : fr.regBase+fr.fn.nregs]
		} else {
			x.shadow = nil
		}
		code := fr.fn.threaded

	blockLoop:
		for {
			tb := &code[fr.block]
			entries := tb.entries
			pc := fr.pc
			for {
				if quantum <= 0 {
					fr.pc = pc
					return
				}
				e := &entries[pc]
				if pn := len(e.pure); pn != 0 {
					// Inline pure run, clamped to the remaining quantum.
					// Accounting comes from the block's prefix sums, so
					// a quantum-clamped partial prefix costs the same as
					// a full run. Pure ops cannot trap, block or observe
					// machine state, so executing the prefix and leaving
					// fr.pc at the boundary is interpreter-identical.
					k := pn
					if quantum < k {
						k = quantum
					}
					for oi, op := range tb.pureOps {
						row := tb.cum[oi]
						if d := row[pc+k] - row[pc]; d != 0 {
							m.opCounts[op] += uint64(d)
						}
					}
					m.steps += uint64(k)
					quantum -= k
					if track {
						runPureTrack(x, e.pure[:k])
					} else {
						runPureFast(x, e.pure[:k])
					}
					pc += k
					continue
				}
				if e.chain != nil && quantum >= int(e.n) {
					fr.pc = pc
					quantum -= int(e.n)
					switch e.chain(x) {
					case sigNext:
						pc += int(e.n)
					case sigJump:
						continue blockLoop
					case sigFrame:
						continue frameLoop
					default:
						return
					}
					continue
				}
				if e.chain4 != nil && quantum >= int(e.n4) {
					fr.pc = pc
					quantum -= int(e.n4)
					switch e.chain4(x) {
					case sigNext:
						pc += int(e.n4)
					case sigJump:
						continue blockLoop
					case sigFrame:
						continue frameLoop
					default:
						return
					}
					continue
				}
				fr.pc = pc
				m.steps++
				m.opCounts[e.op]++
				quantum--
				switch e.fn(x) {
				case sigNext:
					pc++
				case sigJump:
					continue blockLoop
				case sigFrame:
					continue frameLoop
				default:
					return
				}
			}
		}
	}
}
