package mir

// Optimize performs conservative scalar optimizations on a program:
// per-block constant folding and copy propagation, followed by
// function-level dead-code elimination of pure value definitions. It
// models the target compiler's optimizer running *before* analysis
// instrumentation — the pipeline order the paper discusses when it
// moves vectorization after instrumentation (§5.6.1): optimizations
// applied first change which instructions an analysis observes, so
// aldacc-style tools must choose their spot in the pipeline.
//
// The pass never removes or reorders memory operations, calls, locks,
// thread operations, hooks or terminators, so program behavior
// (including everything analyses can observe about memory) is
// unchanged; only pure register arithmetic is simplified.
//
// It returns the number of instructions eliminated.
func Optimize(p *Program) int {
	removed := 0
	for _, f := range p.Funcs {
		for bi := range f.Blocks {
			propagateBlock(&f.Blocks[bi])
		}
		removed += eliminateDead(f)
	}
	return removed
}

// propagateBlock folds constants and propagates copies within one
// block.
func propagateBlock(b *Block) {
	// known maps a register to a constant or register alias valid at the
	// current point in the block.
	known := make(map[Reg]Operand)

	resolve := func(o Operand) Operand {
		for !o.IsConst {
			alias, ok := known[o.Reg]
			if !ok {
				return o
			}
			if !alias.IsConst && alias.Reg == o.Reg {
				return o
			}
			o = alias
		}
		return o
	}
	kill := func(r Reg) {
		delete(known, r)
		for k, v := range known {
			if !v.IsConst && v.Reg == r {
				delete(known, k)
			}
		}
	}

	for ii := range b.Instrs {
		in := &b.Instrs[ii]
		// Rewrite operands through the known map.
		switch in.Op {
		case OpConst, OpAlloca, OpBr:
			// no register inputs
		case OpCall, OpSpawn:
			for ai := range in.Args {
				in.Args[ai] = resolve(in.Args[ai])
			}
		case OpStore:
			in.A = resolve(in.A)
			in.B = resolve(in.B)
		default:
			in.A = resolve(in.A)
			if in.Op.IsBinOp() || in.Op.IsCmp() {
				in.B = resolve(in.B)
			}
		}

		// Fold.
		if (in.Op.IsBinOp() || in.Op.IsCmp()) && in.A.IsConst && in.B.IsConst {
			if v, ok := foldBin(in.Op, in.A.Const, in.B.Const); ok {
				*in = Instr{Op: OpConst, Dst: in.Dst, Imm: v}
			}
		}

		// Record new facts / kill stale ones.
		switch in.Op {
		case OpConst:
			kill(in.Dst)
			known[in.Dst] = C(in.Imm)
		case OpMov:
			kill(in.Dst)
			if !(in.A.IsConst == false && in.A.Reg == in.Dst) {
				known[in.Dst] = in.A
			}
		default:
			if hasDst(in.Op) && in.Dst != NoReg {
				kill(in.Dst)
			}
		}
	}
}

// foldBin evaluates a binary op over constants with the VM's exact
// semantics (signed comparisons, trap-free division, masked shifts).
func foldBin(op Op, a, b int64) (int64, bool) {
	ua, ub := uint64(a), uint64(b)
	switch op {
	case OpAdd:
		return int64(ua + ub), true
	case OpSub:
		return int64(ua - ub), true
	case OpMul:
		return int64(ua * ub), true
	case OpDiv:
		if b == 0 {
			return 0, true
		}
		return a / b, true
	case OpRem:
		if b == 0 {
			return 0, true
		}
		return a % b, true
	case OpAnd:
		return int64(ua & ub), true
	case OpOr:
		return int64(ua | ub), true
	case OpXor:
		return int64(ua ^ ub), true
	case OpShl:
		return int64(ua << (ub & 63)), true
	case OpShr:
		return int64(ua >> (ub & 63)), true
	case OpEq:
		return b2i(a == b), true
	case OpNe:
		return b2i(a != b), true
	case OpLt:
		return b2i(a < b), true
	case OpLe:
		return b2i(a <= b), true
	case OpGt:
		return b2i(a > b), true
	case OpGe:
		return b2i(a >= b), true
	}
	return 0, false
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// eliminateDead removes pure value definitions (const/mov/arith/cmp)
// whose destination register is never read anywhere in the function.
// Loads, allocas, calls, and all effectful instructions stay.
func eliminateDead(f *Func) int {
	read := make([]bool, f.NRegs)
	note := func(o Operand) {
		if !o.IsConst && int(o.Reg) < len(read) {
			read[o.Reg] = true
		}
	}
	for bi := range f.Blocks {
		for ii := range f.Blocks[bi].Instrs {
			in := &f.Blocks[bi].Instrs[ii]
			switch in.Op {
			case OpConst, OpAlloca, OpBr:
			case OpCall, OpSpawn:
				for _, a := range in.Args {
					note(a)
				}
			case OpStore:
				note(in.A)
				note(in.B)
			case OpHook:
				if in.Hook != nil {
					for _, a := range in.Hook.Args {
						if a.Kind == HookReg || a.Kind == HookRegMeta {
							read[a.Reg] = true
						}
					}
				}
			default:
				note(in.A)
				if in.Op.IsBinOp() || in.Op.IsCmp() {
					note(in.B)
				}
			}
		}
	}

	removed := 0
	for bi := range f.Blocks {
		src := f.Blocks[bi].Instrs
		dst := src[:0]
		for ii := range src {
			in := src[ii]
			pure := in.Op == OpConst || in.Op == OpMov || in.Op.IsBinOp() || in.Op.IsCmp()
			if pure && in.Dst != NoReg && int(in.Dst) < len(read) && !read[in.Dst] {
				removed++
				continue
			}
			dst = append(dst, in)
		}
		f.Blocks[bi].Instrs = dst
	}
	return removed
}
