package mir

import (
	"strings"
	"testing"
)

func TestBuilderAndVerify(t *testing.T) {
	p := NewProgram()
	b := p.NewFunc("main", 0)
	a := b.Const(10)
	c := b.Const(32)
	s := b.Add(R(a), R(c))
	b.RetVal(R(s))
	if err := p.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestVerifyErrors(t *testing.T) {
	t.Run("missing entry", func(t *testing.T) {
		p := NewProgram()
		fb := p.NewFunc("other", 0)
		fb.Ret()
		if err := p.Verify(); err == nil || !strings.Contains(err.Error(), "entry") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("entry with params", func(t *testing.T) {
		p := NewProgram()
		fb := p.NewFunc("main", 2)
		fb.Ret()
		if err := p.Verify(); err == nil || !strings.Contains(err.Error(), "no parameters") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("no terminator", func(t *testing.T) {
		p := NewProgram()
		fb := p.NewFunc("main", 0)
		fb.Const(1)
		if err := p.Verify(); err == nil || !strings.Contains(err.Error(), "terminator") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("branch out of range", func(t *testing.T) {
		p := NewProgram()
		fb := p.NewFunc("main", 0)
		fb.Br(99)
		if err := p.Verify(); err == nil || !strings.Contains(err.Error(), "out of range") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("arity mismatch", func(t *testing.T) {
		p := NewProgram()
		callee := p.NewFunc("f", 2)
		callee.Ret()
		fb := p.NewFunc("main", 0)
		fb.Call("f", C(1))
		fb.Ret()
		if err := p.Verify(); err == nil || !strings.Contains(err.Error(), "wants 2") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("bad access size", func(t *testing.T) {
		p := NewProgram()
		fb := p.NewFunc("main", 0)
		a := fb.Alloca(8)
		fb.Store(R(a), C(1), 3)
		fb.Ret()
		if err := p.Verify(); err == nil || !strings.Contains(err.Error(), "size") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("register out of range", func(t *testing.T) {
		p := NewProgram()
		fb := p.NewFunc("main", 0)
		f := fb.Func()
		f.Blocks[0].Instrs = append(f.Blocks[0].Instrs,
			Instr{Op: OpMov, Dst: 0, A: R(99)}, Instr{Op: OpRet})
		f.NRegs = 1
		if err := p.Verify(); err == nil || !strings.Contains(err.Error(), "out of range") {
			t.Fatalf("err = %v", err)
		}
	})
}

func TestOperandNumbering(t *testing.T) {
	// StoreInst: $1 = value, $2 = address (LLVM order).
	st := &Instr{Op: OpStore, A: R(1), B: R(2), Size: 8}
	ops := Operands(st)
	if len(ops) != 2 || ops[0].Reg != 2 || ops[1].Reg != 1 {
		t.Fatalf("store operands = %v", ops)
	}
	ld := &Instr{Op: OpLoad, A: R(3), Size: 4}
	ops = Operands(ld)
	if len(ops) != 1 || ops[0].Reg != 3 {
		t.Fatalf("load operands = %v", ops)
	}
	if SizeOfResult(ld) != 4 {
		t.Fatalf("sizeof($r) for load = %d", SizeOfResult(ld))
	}
	if SizeOfOperand(st, 1) != 8 {
		t.Fatalf("sizeof($1) for store = %d", SizeOfOperand(st, 1))
	}
	al := &Instr{Op: OpAlloca, Imm: 48}
	if SizeOfResult(al) != 48 {
		t.Fatalf("sizeof($r) for alloca = %d", SizeOfResult(al))
	}
	call := &Instr{Op: OpCall, Callee: "f", Args: []Operand{C(1), R(2)}}
	ops = Operands(call)
	if len(ops) != 2 || !ops[0].IsConst || ops[1].Reg != 2 {
		t.Fatalf("call operands = %v", ops)
	}
}

func TestCloneIndependence(t *testing.T) {
	p := NewProgram()
	fb := p.NewFunc("main", 0)
	fb.Const(1)
	fb.Ret()
	q := p.Clone()
	q.Funcs["main"].Blocks[0].Instrs[0].Imm = 42
	if p.Funcs["main"].Blocks[0].Instrs[0].Imm != 1 {
		t.Fatal("clone aliases original instructions")
	}
}

func TestLoopHelper(t *testing.T) {
	p := NewProgram()
	fb := p.NewFunc("main", 0)
	count := 0
	fb.Loop(C(5), func(i Reg) { count++ })
	fb.Ret()
	if count != 1 {
		t.Fatalf("body emitted %d times at build time", count)
	}
	if err := p.Verify(); err != nil {
		t.Fatalf("loop structure invalid: %v", err)
	}
}

func TestPrinter(t *testing.T) {
	p := NewProgram()
	fb := p.NewFunc("main", 0)
	a := fb.Const(7)
	fb.Store(R(a), C(3), 8)
	fb.Lock(R(a))
	fb.Unlock(R(a))
	h := fb.Spawn("main2", C(1))
	fb.Join(R(h))
	fb.CondBr(R(a), 0, 0)
	f2 := p.NewFunc("main2", 1)
	f2.RetVal(R(0))
	out := p.String()
	for _, want := range []string{"func main", "const 7", "store.8", "lock r", "spawn main2(1)", "join", "condbr", "ret r0"} {
		if !strings.Contains(out, want) {
			t.Errorf("printer output missing %q:\n%s", want, out)
		}
	}
}

func TestOpClassification(t *testing.T) {
	if !OpAdd.IsBinOp() || OpEq.IsBinOp() || !OpEq.IsCmp() {
		t.Error("op classification wrong")
	}
	for _, op := range []Op{OpBr, OpCondBr, OpRet, OpRetVal} {
		if !op.IsTerminator() {
			t.Errorf("%s not a terminator", op)
		}
	}
	if OpCall.IsTerminator() {
		t.Error("call is not a terminator")
	}
}

func TestInstrCount(t *testing.T) {
	p := NewProgram()
	fb := p.NewFunc("main", 0)
	fb.Const(1)
	fb.Const(2)
	fb.Ret()
	if got := p.InstrCount(); got != 3 {
		t.Fatalf("instr count = %d", got)
	}
}

func TestDuplicateFunctionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on duplicate function")
		}
	}()
	p := NewProgram()
	p.NewFunc("f", 0)
	p.NewFunc("f", 0)
}
