package mir

import (
	"strings"
	"testing"
)

func TestParseText(t *testing.T) {
	src := `
func main(nparams=0, nregs=4) {
b0:
  r0 = const 16
  r1 = call malloc(r0)
  store.8 [r1] = 42
  r2 = load.8 [r1]
  r3 = add r2, 1
  condbr r3 ? b1 : b1
b1:
  call free(r1)
  ret r3
}
`
	p, err := ParseText(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := p.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	f := p.Funcs["main"]
	if f == nil || len(f.Blocks) != 2 || len(f.Blocks[0].Instrs) != 6 {
		t.Fatalf("shape wrong: %+v", f)
	}
	if f.Blocks[0].Instrs[2].Op != OpStore || f.Blocks[0].Instrs[2].Size != 8 {
		t.Fatalf("store parsed wrong: %+v", f.Blocks[0].Instrs[2])
	}
}

func TestParseErrorsText(t *testing.T) {
	cases := []string{
		"r0 = const 1",                                       // instruction outside function
		"func f(nparams=0, nregs=1) {\nb0:\n}",               // unterminated... actually empty block is a verify error, but the parse of "}" without newline issues
		"func f(nparams=0 nregs=1) {\n}",                     // malformed attributes
		"func f(nparams=0, nregs=1) {\nb5:\n}",               // non-consecutive label
		"func f(nparams=0, nregs=1) {\nb0:\n  r0 = wat 3\n}", // unknown op
		"func f(nparams=0, nregs=1) {\nb0:\n  ret\n",         // unterminated func
	}
	for _, src := range cases {
		if _, err := ParseText(src); err == nil {
			// the second case parses but should fail Verify; accept either
			p, _ := ParseText(src)
			if p != nil {
				if err2 := p.Verify(); err2 != nil {
					continue
				}
			}
			t.Errorf("no error for %q", src)
		}
	}
}

// Property: every workload program round-trips print -> parse -> print
// identically. (The workloads package cannot be imported here without a
// cycle in tests; a representative hand-built program plus the
// instrumented forms exercised in mirroring tests cover the grammar.)
func TestRoundTrip(t *testing.T) {
	p := NewProgram()
	w := p.NewFunc("worker", 2)
	acc, lock := w.Param(0), w.Param(1)
	w.Loop(C(10), func(i Reg) {
		w.Lock(R(lock))
		v := w.Load(R(acc), 8)
		v2 := w.Add(R(v), C(1))
		w.Store(R(acc), R(v2), 8)
		w.Unlock(R(lock))
	})
	w.Ret()
	b := p.NewFunc("main", 0)
	a2 := b.Call("calloc", C(1), C(8))
	l2 := b.Call("malloc", C(8))
	h := b.Spawn("worker", R(a2), R(l2))
	b.Join(R(h))
	x := b.Load(R(a2), 4)
	y := b.Bin(OpXor, R(x), C(-5))
	b.CallVoid("print_i64", R(y))
	b.RetVal(R(y))

	text1 := p.String()
	q, err := ParseText(text1)
	if err != nil {
		t.Fatalf("parse printed program: %v\n%s", err, text1)
	}
	text2 := q.String()
	if text1 != text2 {
		t.Fatalf("round trip diverged:\n--- first ---\n%s\n--- second ---\n%s", text1, text2)
	}
	if err := q.Verify(); err != nil {
		t.Fatalf("round-tripped program fails verify: %v", err)
	}
}

func TestParseTolerantOfComments(t *testing.T) {
	src := `
# comment
// another
func main(nparams=0, nregs=1) {
b0:
  r0 = const 0
  ret r0
}
`
	if _, err := ParseText(src); err != nil {
		t.Fatal(err)
	}
}

func TestParseSkipsEntryCheckUntilVerify(t *testing.T) {
	src := "func helper(nparams=1, nregs=2) {\nb0:\n  ret r0\n}\n"
	p, err := ParseText(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Verify(); err == nil || !strings.Contains(err.Error(), "entry") {
		t.Fatalf("verify err = %v", err)
	}
}
