package mir

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseText parses the textual form emitted by Program.String, so
// programs round-trip through the printer. The format is line-based:
//
//	func name(nparams=N, nregs=M) {
//	b0:
//	  r0 = const 7
//	  r1 = add r0, 3
//	  store.8 [r1] = r0
//	  condbr r0 ? b1 : b2
//	  ...
//	}
//
// It exists for file-based test programs, fuzz/property round-trips,
// and the aldacc -mir flag.
func ParseText(src string) (*Program, error) {
	p := NewProgram()
	var cur *Func
	lineNo := 0
	for _, raw := range strings.Split(src, "\n") {
		lineNo++
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "//") {
			continue
		}
		switch {
		case strings.HasPrefix(line, "func "):
			rest := strings.TrimPrefix(line, "func ")
			open := strings.Index(rest, "(")
			closeP := strings.Index(rest, ")")
			if open < 0 || closeP < open || !strings.HasSuffix(line, "{") {
				return nil, fmt.Errorf("mir: line %d: malformed func header", lineNo)
			}
			name := rest[:open]
			var nparams, nregs int
			for _, field := range strings.Split(rest[open+1:closeP], ",") {
				kv := strings.SplitN(strings.TrimSpace(field), "=", 2)
				if len(kv) != 2 {
					return nil, fmt.Errorf("mir: line %d: malformed func attribute %q", lineNo, field)
				}
				n, err := strconv.Atoi(kv[1])
				if err != nil {
					return nil, fmt.Errorf("mir: line %d: %v", lineNo, err)
				}
				switch kv[0] {
				case "nparams":
					nparams = n
				case "nregs":
					nregs = n
				default:
					return nil, fmt.Errorf("mir: line %d: unknown attribute %q", lineNo, kv[0])
				}
			}
			if _, dup := p.Funcs[name]; dup {
				return nil, fmt.Errorf("mir: line %d: duplicate function %q", lineNo, name)
			}
			cur = &Func{Name: name, NParams: nparams, NRegs: nregs}
			p.Funcs[name] = cur

		case line == "}":
			if cur == nil {
				return nil, fmt.Errorf("mir: line %d: '}' outside function", lineNo)
			}
			cur = nil

		case strings.HasSuffix(line, ":") && strings.HasPrefix(line, "b"):
			if cur == nil {
				return nil, fmt.Errorf("mir: line %d: block label outside function", lineNo)
			}
			idx, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(line, "b"), ":"))
			if err != nil || idx != len(cur.Blocks) {
				return nil, fmt.Errorf("mir: line %d: blocks must be labeled consecutively (got %q, want b%d:)",
					lineNo, line, len(cur.Blocks))
			}
			cur.Blocks = append(cur.Blocks, Block{})

		default:
			if cur == nil || len(cur.Blocks) == 0 {
				return nil, fmt.Errorf("mir: line %d: instruction outside a block", lineNo)
			}
			in, err := parseInstr(line)
			if err != nil {
				return nil, fmt.Errorf("mir: line %d: %v", lineNo, err)
			}
			bi := len(cur.Blocks) - 1
			cur.Blocks[bi].Instrs = append(cur.Blocks[bi].Instrs, in)
		}
	}
	if cur != nil {
		return nil, fmt.Errorf("mir: unterminated function %q", cur.Name)
	}
	return p, nil
}

var binOpNames = map[string]Op{
	"add": OpAdd, "sub": OpSub, "mul": OpMul, "div": OpDiv, "rem": OpRem,
	"and": OpAnd, "or": OpOr, "xor": OpXor, "shl": OpShl, "shr": OpShr,
	"eq": OpEq, "ne": OpNe, "lt": OpLt, "le": OpLe, "gt": OpGt, "ge": OpGe,
}

func parseReg(s string) (Reg, error) {
	if !strings.HasPrefix(s, "r") {
		return 0, fmt.Errorf("expected register, got %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return Reg(n), nil
}

func parseOperand(s string) (Operand, error) {
	s = strings.TrimSpace(s)
	if strings.HasPrefix(s, "r") {
		r, err := parseReg(s)
		if err != nil {
			return Operand{}, err
		}
		return R(r), nil
	}
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return Operand{}, fmt.Errorf("bad operand %q", s)
	}
	return C(v), nil
}

func parseBlockRef(s string) (int, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "b") {
		return 0, fmt.Errorf("expected block ref, got %q", s)
	}
	return strconv.Atoi(s[1:])
}

// parseCall parses `name(arg, arg, ...)`.
func parseCall(s string) (string, []Operand, error) {
	open := strings.Index(s, "(")
	if open < 0 || !strings.HasSuffix(s, ")") {
		return "", nil, fmt.Errorf("malformed call %q", s)
	}
	name := strings.TrimSpace(s[:open])
	inner := strings.TrimSpace(s[open+1 : len(s)-1])
	var args []Operand
	if inner != "" {
		for _, a := range strings.Split(inner, ",") {
			op, err := parseOperand(a)
			if err != nil {
				return "", nil, err
			}
			args = append(args, op)
		}
	}
	return name, args, nil
}

func parseInstr(line string) (Instr, error) {
	// Destination form: "rN = <rhs>".
	if eq := strings.Index(line, " = "); eq > 0 && strings.HasPrefix(line, "r") &&
		!strings.HasPrefix(line, "ret") && !strings.Contains(line[:eq], "[") {
		dst, err := parseReg(strings.TrimSpace(line[:eq]))
		if err != nil {
			return Instr{}, err
		}
		rhs := strings.TrimSpace(line[eq+3:])
		fields := strings.Fields(rhs)
		if len(fields) == 0 {
			return Instr{}, fmt.Errorf("empty rhs")
		}
		switch fields[0] {
		case "const":
			v, err := strconv.ParseInt(fields[1], 0, 64)
			if err != nil {
				return Instr{}, err
			}
			return Instr{Op: OpConst, Dst: dst, Imm: v}, nil
		case "mov":
			a, err := parseOperand(fields[1])
			if err != nil {
				return Instr{}, err
			}
			return Instr{Op: OpMov, Dst: dst, A: a}, nil
		case "alloca":
			v, err := strconv.ParseInt(fields[1], 0, 64)
			if err != nil {
				return Instr{}, err
			}
			return Instr{Op: OpAlloca, Dst: dst, Imm: v}, nil
		case "call", "spawn":
			name, args, err := parseCall(strings.TrimSpace(rhs[len(fields[0]):]))
			if err != nil {
				return Instr{}, err
			}
			op := OpCall
			if fields[0] == "spawn" {
				op = OpSpawn
			}
			return Instr{Op: op, Dst: dst, Callee: name, Args: args}, nil
		}
		if strings.HasPrefix(fields[0], "load.") {
			size, err := strconv.Atoi(strings.TrimPrefix(fields[0], "load."))
			if err != nil {
				return Instr{}, err
			}
			addr := strings.TrimSpace(rhs[len(fields[0]):])
			if !strings.HasPrefix(addr, "[") || !strings.HasSuffix(addr, "]") {
				return Instr{}, fmt.Errorf("malformed load address %q", addr)
			}
			a, err := parseOperand(addr[1 : len(addr)-1])
			if err != nil {
				return Instr{}, err
			}
			return Instr{Op: OpLoad, Dst: dst, A: a, Size: uint8(size)}, nil
		}
		if op, ok := binOpNames[fields[0]]; ok {
			parts := strings.SplitN(strings.TrimSpace(rhs[len(fields[0]):]), ",", 2)
			if len(parts) != 2 {
				return Instr{}, fmt.Errorf("binary op needs two operands: %q", rhs)
			}
			a, err := parseOperand(parts[0])
			if err != nil {
				return Instr{}, err
			}
			b, err := parseOperand(parts[1])
			if err != nil {
				return Instr{}, err
			}
			return Instr{Op: op, Dst: dst, A: a, B: b}, nil
		}
		return Instr{}, fmt.Errorf("unknown rhs %q", rhs)
	}

	fields := strings.Fields(line)
	switch {
	case strings.HasPrefix(line, "store."):
		// store.N [addr] = val
		dot := strings.TrimPrefix(fields[0], "store.")
		size, err := strconv.Atoi(dot)
		if err != nil {
			return Instr{}, err
		}
		rest := strings.TrimSpace(line[len(fields[0]):])
		eq := strings.Index(rest, "=")
		if eq < 0 {
			return Instr{}, fmt.Errorf("malformed store %q", line)
		}
		addrS := strings.TrimSpace(rest[:eq])
		if !strings.HasPrefix(addrS, "[") || !strings.HasSuffix(addrS, "]") {
			return Instr{}, fmt.Errorf("malformed store address %q", addrS)
		}
		a, err := parseOperand(addrS[1 : len(addrS)-1])
		if err != nil {
			return Instr{}, err
		}
		b, err := parseOperand(rest[eq+1:])
		if err != nil {
			return Instr{}, err
		}
		return Instr{Op: OpStore, A: a, B: b, Size: uint8(size)}, nil

	case fields[0] == "br":
		t, err := parseBlockRef(fields[1])
		if err != nil {
			return Instr{}, err
		}
		return Instr{Op: OpBr, Target: t}, nil

	case fields[0] == "condbr":
		// condbr A ? bT : bE
		rest := strings.TrimSpace(line[len("condbr"):])
		q := strings.Index(rest, "?")
		c := strings.Index(rest, ":")
		if q < 0 || c < q {
			return Instr{}, fmt.Errorf("malformed condbr %q", line)
		}
		a, err := parseOperand(rest[:q])
		if err != nil {
			return Instr{}, err
		}
		t, err := parseBlockRef(rest[q+1 : c])
		if err != nil {
			return Instr{}, err
		}
		e, err := parseBlockRef(rest[c+1:])
		if err != nil {
			return Instr{}, err
		}
		return Instr{Op: OpCondBr, A: a, Target: t, Else: e}, nil

	case fields[0] == "call", fields[0] == "spawn":
		name, args, err := parseCall(strings.TrimSpace(line[len(fields[0]):]))
		if err != nil {
			return Instr{}, err
		}
		op := OpCall
		if fields[0] == "spawn" {
			op = OpSpawn
		}
		return Instr{Op: op, Dst: NoReg, Callee: name, Args: args}, nil

	case fields[0] == "ret":
		if len(fields) == 1 {
			return Instr{Op: OpRet}, nil
		}
		a, err := parseOperand(fields[1])
		if err != nil {
			return Instr{}, err
		}
		return Instr{Op: OpRetVal, A: a}, nil

	case fields[0] == "lock", fields[0] == "unlock", fields[0] == "join":
		a, err := parseOperand(fields[1])
		if err != nil {
			return Instr{}, err
		}
		switch fields[0] {
		case "lock":
			return Instr{Op: OpLock, A: a}, nil
		case "unlock":
			return Instr{Op: OpUnlock, A: a}, nil
		default:
			return Instr{Op: OpJoin, A: a}, nil
		}

	case fields[0] == "nop":
		return Instr{Op: OpNop}, nil
	}
	return Instr{}, fmt.Errorf("unknown instruction %q", line)
}
