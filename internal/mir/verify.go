package mir

import "fmt"

// Verify checks structural invariants of a program: every block ends in
// exactly one terminator (and contains no interior terminators), branch
// targets are in range, register references are within the frame, user
// call targets that resolve to program functions have matching arities,
// and the entry function exists and takes no parameters.
func (p *Program) Verify() error {
	entry, ok := p.Funcs[p.Entry]
	if !ok {
		return fmt.Errorf("mir: entry function %q not defined", p.Entry)
	}
	if entry.NParams != 0 {
		return fmt.Errorf("mir: entry function %q must take no parameters", p.Entry)
	}
	for name, f := range p.Funcs {
		if err := p.verifyFunc(f); err != nil {
			return fmt.Errorf("mir: func %s: %w", name, err)
		}
	}
	return nil
}

func (p *Program) verifyFunc(f *Func) error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("has no blocks")
	}
	checkOperand := func(bi, ii int, o Operand) error {
		if !o.IsConst && (o.Reg < 0 || int(o.Reg) >= f.NRegs) {
			return fmt.Errorf("block %d instr %d: register %d out of range [0,%d)", bi, ii, o.Reg, f.NRegs)
		}
		return nil
	}
	for bi := range f.Blocks {
		b := &f.Blocks[bi]
		if len(b.Instrs) == 0 {
			return fmt.Errorf("block %d is empty (needs a terminator)", bi)
		}
		for ii := range b.Instrs {
			in := &b.Instrs[ii]
			last := ii == len(b.Instrs)-1
			if in.Op.IsTerminator() && !last {
				return fmt.Errorf("block %d instr %d: terminator %s before end of block", bi, ii, in.Op)
			}
			if last && !in.Op.IsTerminator() {
				return fmt.Errorf("block %d: last instruction %s is not a terminator", bi, in.Op)
			}
			if hasDst(in.Op) && in.Dst != NoReg {
				if in.Dst < 0 || int(in.Dst) >= f.NRegs {
					return fmt.Errorf("block %d instr %d: dst register %d out of range", bi, ii, in.Dst)
				}
			}
			switch in.Op {
			case OpBr:
				if in.Target < 0 || in.Target >= len(f.Blocks) {
					return fmt.Errorf("block %d instr %d: branch target %d out of range", bi, ii, in.Target)
				}
			case OpCondBr:
				if in.Target < 0 || in.Target >= len(f.Blocks) || in.Else < 0 || in.Else >= len(f.Blocks) {
					return fmt.Errorf("block %d instr %d: condbr targets (%d, %d) out of range", bi, ii, in.Target, in.Else)
				}
				if err := checkOperand(bi, ii, in.A); err != nil {
					return err
				}
			case OpCall, OpSpawn:
				if callee, ok := p.Funcs[in.Callee]; ok {
					if len(in.Args) != callee.NParams {
						return fmt.Errorf("block %d instr %d: call %s passes %d args, wants %d",
							bi, ii, in.Callee, len(in.Args), callee.NParams)
					}
				}
				for _, a := range in.Args {
					if err := checkOperand(bi, ii, a); err != nil {
						return err
					}
				}
			case OpLoad, OpStore:
				if in.Size != 1 && in.Size != 2 && in.Size != 4 && in.Size != 8 {
					return fmt.Errorf("block %d instr %d: invalid access size %d", bi, ii, in.Size)
				}
				if err := checkOperand(bi, ii, in.A); err != nil {
					return err
				}
				if in.Op == OpStore {
					if err := checkOperand(bi, ii, in.B); err != nil {
						return err
					}
				}
			case OpAlloca:
				if in.Imm <= 0 {
					return fmt.Errorf("block %d instr %d: alloca size %d must be positive", bi, ii, in.Imm)
				}
			default:
				if err := checkOperand(bi, ii, in.A); err != nil {
					return err
				}
				if err := checkOperand(bi, ii, in.B); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func hasDst(op Op) bool {
	switch op {
	case OpConst, OpMov, OpLoad, OpAlloca, OpCall, OpSpawn:
		return true
	}
	return op.IsBinOp() || op.IsCmp()
}
