package mir

import "testing"

func TestConstantFolding(t *testing.T) {
	p := NewProgram()
	b := p.NewFunc("main", 0)
	x := b.Const(6)
	y := b.Const(7)
	z := b.Mul(R(x), R(y))
	w := b.Add(R(z), C(0))
	b.RetVal(R(w))

	Optimize(p)
	if err := p.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	// The return operand must have been folded to the constant 42 (the
	// ret's operand resolves through the propagated chain).
	f := p.Funcs["main"]
	last := f.Blocks[0].Instrs[len(f.Blocks[0].Instrs)-1]
	if last.Op != OpRetVal || !last.A.IsConst || last.A.Const != 42 {
		t.Fatalf("folding failed: %s", f.String())
	}
}

func TestFoldSemanticsMatchVM(t *testing.T) {
	cases := []struct {
		op   Op
		a, b int64
		want int64
	}{
		{OpDiv, 5, 0, 0},
		{OpRem, 5, 0, 0},
		{OpDiv, -7, 2, -3},
		{OpShl, 1, 64, 1},
		{OpLt, -1, 1, 1},
		{OpGe, -6, -5, 0},
	}
	for _, c := range cases {
		got, ok := foldBin(c.op, c.a, c.b)
		if !ok || got != c.want {
			t.Errorf("fold %s(%d,%d) = %d,%v want %d", c.op, c.a, c.b, got, ok, c.want)
		}
	}
}

func TestDeadCodeElimination(t *testing.T) {
	p := NewProgram()
	b := p.NewFunc("main", 0)
	dead := b.Const(99)
	_ = b.Add(R(dead), C(1)) // dead chain
	live := b.Const(5)
	buf := b.Alloca(8)
	b.Store(R(buf), R(live), 8)
	v := b.Load(R(buf), 8)
	b.RetVal(R(v))

	before := p.InstrCount()
	removed := Optimize(p)
	if removed == 0 {
		t.Fatal("nothing eliminated")
	}
	if p.InstrCount() >= before {
		t.Fatal("instruction count did not drop")
	}
	if err := p.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	// The store and load must survive.
	found := map[Op]bool{}
	for _, in := range p.Funcs["main"].Blocks[0].Instrs {
		found[in.Op] = true
	}
	if !found[OpStore] || !found[OpLoad] || !found[OpAlloca] {
		t.Fatalf("memory operations eliminated: %s", p.Funcs["main"].String())
	}
}

func TestCopyPropKillsOnRedefinition(t *testing.T) {
	// r1 = const 1; r2 = mov r1; r1 = const 2; ret r2 — r2 must stay 1.
	p := NewProgram()
	fb := p.NewFunc("main", 0)
	f := fb.Func()
	f.NRegs = 2
	f.Blocks = []Block{{Instrs: []Instr{
		{Op: OpConst, Dst: 0, Imm: 1},
		{Op: OpMov, Dst: 1, A: R(0)},
		{Op: OpConst, Dst: 0, Imm: 2},
		{Op: OpRetVal, A: R(1)},
	}}}
	Optimize(p)
	last := f.Blocks[0].Instrs[len(f.Blocks[0].Instrs)-1]
	if last.A.IsConst && last.A.Const != 1 {
		t.Fatalf("stale copy propagated: %s", f.String())
	}
	// Whether folded to const 1 or left as r1-era value, it must not be 2.
	if last.A.IsConst && last.A.Const == 2 {
		t.Fatal("redefinition not killed")
	}
}

func TestHookArgsKeepRegistersLive(t *testing.T) {
	p := NewProgram()
	fb := p.NewFunc("main", 0)
	f := fb.Func()
	f.NRegs = 1
	f.Blocks = []Block{{Instrs: []Instr{
		{Op: OpConst, Dst: 0, Imm: 7},
		{Op: OpHook, Dst: NoReg, Hook: &HookRef{
			HandlerID: 0, Args: []HookArg{{Kind: HookReg, Reg: 0}}, MetaDst: NoReg, Name: "h"}},
		{Op: OpRet},
	}}}
	if removed := Optimize(p); removed != 0 {
		t.Fatalf("eliminated a hook-read register (%d removed)", removed)
	}
}
