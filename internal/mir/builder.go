package mir

import "fmt"

// FuncBuilder incrementally constructs a Func. Blocks are created with
// NewBlock and selected with SetBlock; emit methods append to the
// current block. Registers are allocated with NewReg (parameters occupy
// registers 0..NParams-1 automatically).
type FuncBuilder struct {
	f   *Func
	cur int
}

// NewFunc creates a function in p and returns its builder. The builder
// starts with block 0 selected.
func (p *Program) NewFunc(name string, nparams int) *FuncBuilder {
	if _, ok := p.Funcs[name]; ok {
		panic(fmt.Sprintf("mir: duplicate function %q", name))
	}
	f := &Func{Name: name, NParams: nparams, NRegs: nparams}
	f.Blocks = append(f.Blocks, Block{})
	p.Funcs[name] = f
	return &FuncBuilder{f: f}
}

// Func returns the function under construction.
func (b *FuncBuilder) Func() *Func { return b.f }

// NewReg allocates a fresh virtual register.
func (b *FuncBuilder) NewReg() Reg {
	r := Reg(b.f.NRegs)
	b.f.NRegs++
	return r
}

// Param returns the register holding the i-th (0-based) parameter.
func (b *FuncBuilder) Param(i int) Reg {
	if i < 0 || i >= b.f.NParams {
		panic(fmt.Sprintf("mir: function %s has no parameter %d", b.f.Name, i))
	}
	return Reg(i)
}

// NewBlock creates an empty block and returns its index (without
// selecting it).
func (b *FuncBuilder) NewBlock() int {
	b.f.Blocks = append(b.f.Blocks, Block{})
	return len(b.f.Blocks) - 1
}

// SetBlock selects the emission target.
func (b *FuncBuilder) SetBlock(i int) { b.cur = i }

// CurBlock returns the index of the current block.
func (b *FuncBuilder) CurBlock() int { return b.cur }

func (b *FuncBuilder) emit(in Instr) {
	blk := &b.f.Blocks[b.cur]
	blk.Instrs = append(blk.Instrs, in)
}

// Const emits dst = v into a fresh register.
func (b *FuncBuilder) Const(v int64) Reg {
	r := b.NewReg()
	b.emit(Instr{Op: OpConst, Dst: r, Imm: v})
	return r
}

// Mov emits dst = a.
func (b *FuncBuilder) Mov(a Operand) Reg {
	r := b.NewReg()
	b.emit(Instr{Op: OpMov, Dst: r, A: a})
	return r
}

// Bin emits dst = a op b for an arithmetic or comparison opcode.
func (b *FuncBuilder) Bin(op Op, a, c Operand) Reg {
	if !op.IsBinOp() && !op.IsCmp() {
		panic(fmt.Sprintf("mir: Bin with non-binary op %s", op))
	}
	r := b.NewReg()
	b.emit(Instr{Op: op, Dst: r, A: a, B: c})
	return r
}

// BinTo emits dst = a op b into an existing register, for loop-carried
// values that live in a register across iterations instead of the
// memory cell Loop uses.
func (b *FuncBuilder) BinTo(dst Reg, op Op, a, c Operand) {
	if !op.IsBinOp() && !op.IsCmp() {
		panic(fmt.Sprintf("mir: BinTo with non-binary op %s", op))
	}
	b.emit(Instr{Op: op, Dst: dst, A: a, B: c})
}

// MovTo emits dst = a into an existing register.
func (b *FuncBuilder) MovTo(dst Reg, a Operand) {
	b.emit(Instr{Op: OpMov, Dst: dst, A: a})
}

// Add emits dst = a + b.
func (b *FuncBuilder) Add(a, c Operand) Reg { return b.Bin(OpAdd, a, c) }

// Sub emits dst = a - b.
func (b *FuncBuilder) Sub(a, c Operand) Reg { return b.Bin(OpSub, a, c) }

// Mul emits dst = a * b.
func (b *FuncBuilder) Mul(a, c Operand) Reg { return b.Bin(OpMul, a, c) }

// Load emits dst = mem[addr] of size bytes.
func (b *FuncBuilder) Load(addr Operand, size uint8) Reg {
	r := b.NewReg()
	b.emit(Instr{Op: OpLoad, Dst: r, A: addr, Size: size})
	return r
}

// Store emits mem[addr] = val of size bytes.
func (b *FuncBuilder) Store(addr, val Operand, size uint8) {
	b.emit(Instr{Op: OpStore, A: addr, B: val, Size: size})
}

// Alloca emits a stack allocation of size bytes and returns the pointer
// register.
func (b *FuncBuilder) Alloca(size int64) Reg {
	r := b.NewReg()
	b.emit(Instr{Op: OpAlloca, Dst: r, Imm: size})
	return r
}

// Br emits an unconditional branch.
func (b *FuncBuilder) Br(target int) {
	b.emit(Instr{Op: OpBr, Target: target})
}

// CondBr emits a conditional branch.
func (b *FuncBuilder) CondBr(cond Operand, then, els int) {
	b.emit(Instr{Op: OpCondBr, A: cond, Target: then, Else: els})
}

// Call emits dst = callee(args...). The callee may be a user function or
// a library model; the VM resolves it at link time.
func (b *FuncBuilder) Call(callee string, args ...Operand) Reg {
	r := b.NewReg()
	b.emit(Instr{Op: OpCall, Dst: r, Callee: callee, Args: args})
	return r
}

// CallVoid emits callee(args...) discarding the result.
func (b *FuncBuilder) CallVoid(callee string, args ...Operand) {
	b.emit(Instr{Op: OpCall, Dst: NoReg, Callee: callee, Args: args})
}

// Ret emits a valueless return.
func (b *FuncBuilder) Ret() { b.emit(Instr{Op: OpRet}) }

// RetVal emits return a.
func (b *FuncBuilder) RetVal(a Operand) { b.emit(Instr{Op: OpRetVal, A: a}) }

// Lock emits acquisition of lock id a.
func (b *FuncBuilder) Lock(a Operand) { b.emit(Instr{Op: OpLock, A: a}) }

// Unlock emits release of lock id a.
func (b *FuncBuilder) Unlock(a Operand) { b.emit(Instr{Op: OpUnlock, A: a}) }

// Spawn emits dst = spawn callee(args...) and returns the thread-handle
// register.
func (b *FuncBuilder) Spawn(callee string, args ...Operand) Reg {
	r := b.NewReg()
	b.emit(Instr{Op: OpSpawn, Dst: r, Callee: callee, Args: args})
	return r
}

// Join emits join(handle).
func (b *FuncBuilder) Join(handle Operand) {
	b.emit(Instr{Op: OpJoin, A: handle})
}

// If is a convenience that emits `if cond != 0 { then() } else { els() }`
// as a diamond and leaves the builder positioned in the join block. els
// may be nil for a one-armed conditional.
func (b *FuncBuilder) If(cond Operand, then, els func()) {
	thenB := b.NewBlock()
	join := b.NewBlock()
	elsB := join
	if els != nil {
		elsB = b.NewBlock()
	}
	b.CondBr(cond, thenB, elsB)

	b.SetBlock(thenB)
	then()
	b.Br(join)

	if els != nil {
		b.SetBlock(elsB)
		els()
		b.Br(join)
	}
	b.SetBlock(join)
}

// Loop is a convenience that emits a counted loop `for i = 0; i < n;
// i++ { body(i) }`. It creates the needed blocks and leaves the builder
// positioned in the exit block. The body callback receives the loop
// induction register.
func (b *FuncBuilder) Loop(n Operand, body func(i Reg)) {
	iVar := b.Alloca(8)
	zero := b.Const(0)
	b.Store(R(iVar), R(zero), 8)

	head := b.NewBlock()
	bodyB := b.NewBlock()
	exit := b.NewBlock()

	b.Br(head)
	b.SetBlock(head)
	iv := b.Load(R(iVar), 8)
	c := b.Bin(OpLt, R(iv), n)
	b.CondBr(R(c), bodyB, exit)

	b.SetBlock(bodyB)
	iv2 := b.Load(R(iVar), 8)
	body(iv2)
	iv3 := b.Load(R(iVar), 8)
	next := b.Add(R(iv3), C(1))
	b.Store(R(iVar), R(next), 8)
	b.Br(head)

	b.SetBlock(exit)
}
