// Package mir defines the miniature intermediate representation that
// stands in for LLVM IR in this reproduction.
//
// MIR is a register machine over 64-bit values organized as functions of
// basic blocks. It provides exactly what ALDAcc needs from an
// instrumentation substrate: a typed instruction stream with
// identifiable insertion points (loads, stores, allocas, branches, calls,
// lock operations, thread operations) and stable operand numbering for
// the $i call-arg syntax of Table 2. Programs are built with the Builder
// API (package mir's FuncBuilder), checked by Verify, and executed by
// package vm.
package mir

import "fmt"

// Reg is a virtual register index within a function frame.
type Reg int32

// NoReg marks an absent destination register.
const NoReg Reg = -1

// Op is an instruction opcode.
type Op uint8

// Opcodes.
const (
	OpNop Op = iota

	OpConst // Dst = Imm
	OpMov   // Dst = A

	// Binary arithmetic (Dst = A op B). Div/Rem are signed and trap-free:
	// division by zero yields 0, matching a hardened runtime.
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpRem
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr

	// Comparisons (Dst = A op B ? 1 : 0), signed.
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe

	OpLoad   // Dst = mem[A], Size bytes
	OpStore  // mem[A] = B, Size bytes
	OpAlloca // Dst = stack allocation of Imm bytes

	OpBr     // goto Target
	OpCondBr // if A != 0 goto Target else Else
	OpCall   // Dst = Callee(Args...) — user function or library model
	OpRet    // return (no value)
	OpRetVal // return A

	OpLock   // acquire lock A
	OpUnlock // release lock A
	OpSpawn  // Dst = spawn Callee(Args...), returns thread handle
	OpJoin   // join thread A

	OpHook // inserted analysis event call (see HookRef)
)

// NumOps sizes per-opcode tables (OpHook is the last opcode).
const NumOps = int(OpHook) + 1

var opNames = [...]string{
	OpNop: "nop", OpConst: "const", OpMov: "mov",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpRem: "rem",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpShl: "shl", OpShr: "shr",
	OpEq: "eq", OpNe: "ne", OpLt: "lt", OpLe: "le", OpGt: "gt", OpGe: "ge",
	OpLoad: "load", OpStore: "store", OpAlloca: "alloca",
	OpBr: "br", OpCondBr: "condbr", OpCall: "call",
	OpRet: "ret", OpRetVal: "retval",
	OpLock: "lock", OpUnlock: "unlock", OpSpawn: "spawn", OpJoin: "join",
	OpHook: "hook",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// IsBinOp reports whether o is an arithmetic binary operation
// (the BinOpInst insertion point).
func (o Op) IsBinOp() bool { return o >= OpAdd && o <= OpShr }

// IsCmp reports whether o is a comparison (the CmpInst insertion point).
func (o Op) IsCmp() bool { return o >= OpEq && o <= OpGe }

// IsTerminator reports whether o ends a basic block.
func (o Op) IsTerminator() bool {
	switch o {
	case OpBr, OpCondBr, OpRet, OpRetVal:
		return true
	}
	return false
}

// Operand is a register or constant instruction input.
type Operand struct {
	IsConst bool
	Reg     Reg
	Const   int64
}

// R makes a register operand.
func R(r Reg) Operand { return Operand{Reg: r} }

// C makes a constant operand.
func C(v int64) Operand { return Operand{IsConst: true, Const: v} }

func (o Operand) String() string {
	if o.IsConst {
		return fmt.Sprintf("%d", o.Const)
	}
	return fmt.Sprintf("r%d", o.Reg)
}

// HookRef attaches an analysis event call to an instruction stream. The
// instrumenter fills it in; the VM dispatches on it. HandlerID indexes
// the analysis's handler table; Args are pre-resolved argument fetch
// specs.
type HookRef struct {
	HandlerID int
	Args      []HookArg
	// MetaDst, when valid, receives the handler's return value into the
	// shadow register of the hooked instruction's destination.
	MetaDst Reg
	// Name is the handler name, for diagnostics.
	Name string
}

// HookArgKind says how the VM materializes one hook argument.
type HookArgKind uint8

// Hook argument sources. $r and $X.m references are resolved by the
// instrumenter to registers, so the runtime only distinguishes these
// four.
const (
	HookConst   HookArgKind = iota // fixed value (e.g. sizeof)
	HookReg                        // value of a register
	HookRegMeta                    // shadow (local metadata) of a register
	HookThread                     // current thread id
)

// HookArg is one resolved hook argument.
type HookArg struct {
	Kind  HookArgKind
	Reg   Reg
	Const int64
}

// Instr is a single MIR instruction.
type Instr struct {
	Op     Op
	Dst    Reg
	A, B   Operand
	Size   uint8 // OpLoad/OpStore access width (1, 2, 4, 8)
	Imm    int64 // OpConst value; OpAlloca byte size
	Callee string
	Args   []Operand
	Target int // OpBr/OpCondBr taken block
	Else   int // OpCondBr fall-through block
	Hook   *HookRef
}

// Block is a basic block: a straight-line instruction list ending in a
// terminator.
type Block struct {
	Instrs []Instr
}

// Func is a MIR function. Parameters arrive in registers 0..NParams-1.
type Func struct {
	Name    string
	NParams int
	NRegs   int
	Blocks  []Block
}

// Program is a set of functions; execution starts at Entry.
type Program struct {
	Funcs map[string]*Func
	Entry string
}

// NewProgram returns an empty program with entry point "main".
func NewProgram() *Program {
	return &Program{Funcs: make(map[string]*Func), Entry: "main"}
}

// Clone deep-copies the program so instrumentation never mutates the
// caller's copy.
func (p *Program) Clone() *Program {
	out := &Program{Funcs: make(map[string]*Func, len(p.Funcs)), Entry: p.Entry}
	for name, f := range p.Funcs {
		nf := &Func{Name: f.Name, NParams: f.NParams, NRegs: f.NRegs, Blocks: make([]Block, len(f.Blocks))}
		for i, b := range f.Blocks {
			instrs := make([]Instr, len(b.Instrs))
			copy(instrs, b.Instrs)
			for j := range instrs {
				if instrs[j].Args != nil {
					args := make([]Operand, len(instrs[j].Args))
					copy(args, instrs[j].Args)
					instrs[j].Args = args
				}
				// HookRefs are immutable after creation; share them.
			}
			nf.Blocks[i] = Block{Instrs: instrs}
		}
		out.Funcs[name] = nf
	}
	return out
}

// InstrCount returns the static number of instructions in the program.
func (p *Program) InstrCount() int {
	n := 0
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			n += len(b.Instrs)
		}
	}
	return n
}

// Operands returns the instrumentation-visible operand list of an
// instruction in LLVM order, implementing Table 2's $i numbering:
//
//	LoadInst:   $1 = address
//	StoreInst:  $1 = stored value, $2 = address (LLVM operand order)
//	CondBr:     $1 = condition
//	BinOp/Cmp:  $1, $2 = inputs
//	Call/Spawn: $i = i-th argument
//	Lock/Unlock/Join: $1 = lock / thread handle
//	Alloca:     (no value operands; $r is the resulting pointer)
func Operands(in *Instr) []Operand {
	switch in.Op {
	case OpLoad:
		return []Operand{in.A}
	case OpStore:
		return []Operand{in.B, in.A}
	case OpCondBr:
		return []Operand{in.A}
	case OpCall, OpSpawn:
		return in.Args
	case OpLock, OpUnlock, OpJoin:
		return []Operand{in.A}
	case OpMov, OpRetVal:
		return []Operand{in.A}
	default:
		if in.Op.IsBinOp() || in.Op.IsCmp() {
			return []Operand{in.A, in.B}
		}
	}
	return nil
}

// SizeOfOperand returns the byte size associated with operand index i
// (1-based) for sizeof($i), or 8 when the IR carries no width.
func SizeOfOperand(in *Instr, i int) int64 {
	switch in.Op {
	case OpStore:
		if i == 1 {
			return int64(in.Size)
		}
	case OpLoad:
		if i == 1 {
			return 8 // address operand — pointer width
		}
	}
	return 8
}

// SizeOfResult returns the byte size for sizeof($r).
func SizeOfResult(in *Instr) int64 {
	switch in.Op {
	case OpLoad:
		return int64(in.Size)
	case OpAlloca:
		return in.Imm
	}
	return 8
}
