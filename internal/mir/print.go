package mir

import (
	"fmt"
	"sort"
	"strings"
)

// String renders the program as readable text, functions sorted by name,
// for debugging and golden tests.
func (p *Program) String() string {
	names := make([]string, 0, len(p.Funcs))
	for n := range p.Funcs {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		b.WriteString(p.Funcs[n].String())
		b.WriteByte('\n')
	}
	return b.String()
}

// String renders a single function.
func (f *Func) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "func %s(nparams=%d, nregs=%d) {\n", f.Name, f.NParams, f.NRegs)
	for bi := range f.Blocks {
		fmt.Fprintf(&b, "b%d:\n", bi)
		for ii := range f.Blocks[bi].Instrs {
			in := &f.Blocks[bi].Instrs[ii]
			b.WriteString("  ")
			b.WriteString(in.String())
			b.WriteByte('\n')
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// String renders one instruction.
func (in *Instr) String() string {
	switch in.Op {
	case OpConst:
		return fmt.Sprintf("r%d = const %d", in.Dst, in.Imm)
	case OpMov:
		return fmt.Sprintf("r%d = mov %s", in.Dst, in.A)
	case OpLoad:
		return fmt.Sprintf("r%d = load.%d [%s]", in.Dst, in.Size, in.A)
	case OpStore:
		return fmt.Sprintf("store.%d [%s] = %s", in.Size, in.A, in.B)
	case OpAlloca:
		return fmt.Sprintf("r%d = alloca %d", in.Dst, in.Imm)
	case OpBr:
		return fmt.Sprintf("br b%d", in.Target)
	case OpCondBr:
		return fmt.Sprintf("condbr %s ? b%d : b%d", in.A, in.Target, in.Else)
	case OpCall, OpSpawn:
		args := make([]string, len(in.Args))
		for i, a := range in.Args {
			args[i] = a.String()
		}
		verb := "call"
		if in.Op == OpSpawn {
			verb = "spawn"
		}
		if in.Dst == NoReg {
			return fmt.Sprintf("%s %s(%s)", verb, in.Callee, strings.Join(args, ", "))
		}
		return fmt.Sprintf("r%d = %s %s(%s)", in.Dst, verb, in.Callee, strings.Join(args, ", "))
	case OpRet:
		return "ret"
	case OpRetVal:
		return fmt.Sprintf("ret %s", in.A)
	case OpLock:
		return fmt.Sprintf("lock %s", in.A)
	case OpUnlock:
		return fmt.Sprintf("unlock %s", in.A)
	case OpJoin:
		return fmt.Sprintf("join %s", in.A)
	case OpHook:
		if in.Hook != nil {
			return fmt.Sprintf("hook %s(#%d args)", in.Hook.Name, len(in.Hook.Args))
		}
		return "hook <unresolved>"
	}
	if in.Op.IsBinOp() || in.Op.IsCmp() {
		return fmt.Sprintf("r%d = %s %s, %s", in.Dst, in.Op, in.A, in.B)
	}
	return in.Op.String()
}
