// Package trace defines the compressed binary event-stream format the
// VM's record mode emits and the replay engine consumes (the ROADMAP's
// SD3-style trace tier). A trace captures everything about one
// execution that is not recomputable from the program text and the
// thread interleaving: load values, library-call results, and the
// scheduler's quantum decisions. Register arithmetic, branches, lock
// state and stack layout are deterministic given those inputs, so the
// replay engine re-derives them instead of storing them — that is what
// makes the stream small.
//
// Layout (all integers varint unless noted):
//
//	header:  "ALDATRC1" | uvarint version | fixed64 LE program fingerprint
//	         | svarint scheduler seed | uvarint quantum
//	records: 0x01 batch  svarint Δtid, uvarint psteps, uvarint thooks,
//	                     uvarint len(payload), payload
//	         0x02 end    uvarint exit            (exactly one terminal,
//	         0x03 fail   string kind, string msg  as the final record)
//
// A batch is one scheduler quantum: psteps non-hook instructions retired
// plus thooks trailing hook dispatches after the last non-hook step —
// together they pin the quantum boundary exactly without referencing
// the instrumentation schema, so a trace recorded from the plain
// program replays into any instrumented clone of it.
//
// Payload events use stride predictors à la SD3: each load/store
// address (and each load value) is encoded as the signed residual
// against a {last, stride} predictor, and runs of perfectly predicted
// accesses collapse into a single run-length record. Predictor state
// persists across batches and is shared by writer and reader.
//
//	0x10 load    svarint addr-resid, svarint val-resid
//	0x11 store   svarint addr-resid
//	0x12 repload uvarint n   (n loads, all residuals zero)
//	0x13 repstore uvarint n
//	0x14 lib     svarint Δret
//	0x15 lock    svarint Δaddr      0x16 unlock  svarint Δaddr
//	0x17 join    uvarint target     0x18 spawn   uvarint tid
//	0x19 alloc   svarint Δaddr, uvarint size
//	0x1a free    svarint Δaddr
//
// The decoder is hardened against adversarial input: every length field
// is validated against the bytes actually present before use, so a
// corrupt trace yields a typed *DecodeError, never a panic or an
// attacker-sized allocation.
package trace

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Magic begins every trace file.
const Magic = "ALDATRC1"

// Version is the current format version.
const Version = 1

// Record tags.
const (
	recBatch = 0x01
	recEnd   = 0x02
	recFail  = 0x03
)

// EvKind identifies one replayable event.
type EvKind uint8

// Event kinds as surfaced by Cursor.Next (run-length records are
// materialized back into their individual loads/stores).
const (
	EvLoad EvKind = 0x10 + iota
	EvStore
	evRepLoad  // internal: expanded by the cursor
	evRepStore // internal: expanded by the cursor
	EvLib
	EvLock
	EvUnlock
	EvJoin
	EvSpawn
	EvAlloc
	EvFree
)

func (k EvKind) String() string {
	switch k {
	case EvLoad:
		return "load"
	case EvStore:
		return "store"
	case EvLib:
		return "lib"
	case EvLock:
		return "lock"
	case EvUnlock:
		return "unlock"
	case EvJoin:
		return "join"
	case EvSpawn:
		return "spawn"
	case EvAlloc:
		return "alloc"
	case EvFree:
		return "free"
	}
	return fmt.Sprintf("ev(%#x)", uint8(k))
}

// DecodeError is the typed failure every malformed input maps to.
type DecodeError struct {
	Off int    // byte offset the decoder stopped at
	Msg string // what was wrong
}

func (e *DecodeError) Error() string {
	return fmt.Sprintf("trace: corrupt at offset %d: %s", e.Off, e.Msg)
}

// ErrBatchDrained reports that the current batch has no more events;
// the replay engine then advances to the next record.
var ErrBatchDrained = errors.New("trace: batch drained")

// failStringCap bounds the kind/msg strings of a fail record; real
// RunError messages are far below it, and it stops a crafted length
// field from forcing a giant allocation.
const failStringCap = 1 << 16

// pred is one stride predictor. predict() guesses last+stride; observe
// folds the true value in. Writer and cursor run identical copies.
type pred struct{ last, stride uint64 }

func (p *pred) predict() uint64  { return p.last + p.stride }
func (p *pred) observe(x uint64) { p.stride = x - p.last; p.last = x }

// preds is the full predictor state threaded through a stream.
type preds struct {
	loadA, loadV pred   // load address / load value
	storeA       pred   // store address
	lastSync     uint64 // lock/unlock address delta chain
	lastRet      uint64 // library return-value delta chain
	lastAlloc    uint64 // alloc/free address delta chain
}

// Stats summarizes one trace for the observability surface.
type Stats struct {
	ProgFP  uint64
	Seed    int64
	Quantum int

	Batches uint64 // scheduler quanta recorded
	Events  uint64 // individual events (rep runs expanded)
	Loads   uint64
	Stores  uint64
	RepRuns uint64 // run-length records emitted
	Libs    uint64
	Locks   uint64
	Unlocks uint64
	Joins   uint64
	Spawns  uint64
	Allocs  uint64
	Frees   uint64

	Bytes    uint64 // encoded size including header
	RawBytes uint64 // fixed-width encoding of the same events (ratio denominator)
}

// Ratio returns RawBytes/Bytes — the compression the stride/varint
// encoding achieved over a naive fixed-width event stream.
func (s Stats) Ratio() float64 {
	if s.Bytes == 0 {
		return 0
	}
	return float64(s.RawBytes) / float64(s.Bytes)
}

// rawCost is the fixed-width byte cost an event contributes to
// RawBytes: 1 tag byte plus 8 bytes per operand.
func rawCost(kind EvKind) uint64 {
	switch kind {
	case EvLoad, EvAlloc:
		return 17
	default:
		return 9
	}
}

const rawBatchCost = 1 + 8 + 8 + 8 // tag + tid + psteps + thooks, fixed width

// ---------------------------------------------------------------------------
// Writer

// Writer encodes a trace onto a sink. Errors are sticky: the first
// write failure latches and every later call is a no-op, so the VM's
// hot path records without per-event error plumbing and checks Err
// once at the end.
type Writer struct {
	sink io.Writer
	err  error

	p       preds
	payload []byte // current batch, flushed by EndBatch
	repKind EvKind // evRepLoad/evRepStore while a run is open, else 0
	repN    uint64
	lastTid int64

	scratch [8 * binary.MaxVarintLen64]byte // batch header: tag + 4 varints
	stats   Stats
	done    bool
}

// NewWriter starts a trace on sink, writing the header immediately.
// progFP is the program fingerprint replay validates against; seed and
// quantum are recorded for provenance and stats.
func NewWriter(sink io.Writer, progFP uint64, seed int64, quantum int) *Writer {
	w := &Writer{sink: sink}
	w.stats.ProgFP = progFP
	w.stats.Seed = seed
	w.stats.Quantum = quantum
	var hdr []byte
	hdr = append(hdr, Magic...)
	hdr = binary.AppendUvarint(hdr, Version)
	hdr = binary.LittleEndian.AppendUint64(hdr, progFP)
	hdr = binary.AppendVarint(hdr, seed)
	hdr = binary.AppendUvarint(hdr, uint64(quantum))
	w.write(hdr)
	w.stats.RawBytes += uint64(len(hdr))
	return w
}

func (w *Writer) write(b []byte) {
	if w.err != nil {
		return
	}
	if _, err := w.sink.Write(b); err != nil {
		w.err = err
	}
	w.stats.Bytes += uint64(len(b))
}

// Err returns the sticky write error, if any.
func (w *Writer) Err() error { return w.err }

// Stats returns the running statistics of the stream so far.
func (w *Writer) Stats() Stats { return w.stats }

func (w *Writer) flushRep() {
	if w.repN == 0 {
		return
	}
	w.payload = append(w.payload, byte(w.repKind))
	w.payload = binary.AppendUvarint(w.payload, w.repN)
	w.stats.RepRuns++
	w.repN, w.repKind = 0, 0
}

func (w *Writer) event(kind EvKind) {
	w.flushRep()
	w.payload = append(w.payload, byte(kind))
	w.stats.Events++
	w.stats.RawBytes += rawCost(kind)
}

// Load records one memory read: its address and the value produced.
func (w *Writer) Load(addr, val uint64) {
	pa, pv := w.p.loadA.predict(), w.p.loadV.predict()
	w.stats.Loads++
	if addr == pa && val == pv {
		if w.repKind != evRepLoad {
			w.flushRep()
			w.repKind = evRepLoad
		}
		w.repN++
		w.stats.Events++
		w.stats.RawBytes += rawCost(EvLoad)
	} else {
		w.event(EvLoad)
		w.payload = binary.AppendVarint(w.payload, int64(addr-pa))
		w.payload = binary.AppendVarint(w.payload, int64(val-pv))
	}
	w.p.loadA.observe(addr)
	w.p.loadV.observe(val)
}

// Store records one memory write's address (the value is recomputed at
// replay; only loads need their data).
func (w *Writer) Store(addr uint64) {
	pa := w.p.storeA.predict()
	w.stats.Stores++
	if addr == pa {
		if w.repKind != evRepStore {
			w.flushRep()
			w.repKind = evRepStore
		}
		w.repN++
		w.stats.Events++
		w.stats.RawBytes += rawCost(EvStore)
	} else {
		w.event(EvStore)
		w.payload = binary.AppendVarint(w.payload, int64(addr-pa))
	}
	w.p.storeA.observe(addr)
}

// Lib records a library call's return value; replay skips the model
// body and substitutes this.
func (w *Writer) Lib(ret uint64) {
	w.event(EvLib)
	w.payload = binary.AppendVarint(w.payload, int64(ret-w.p.lastRet))
	w.p.lastRet = ret
	w.stats.Libs++
}

func (w *Writer) sync(kind EvKind, addr uint64) {
	w.event(kind)
	w.payload = binary.AppendVarint(w.payload, int64(addr-w.p.lastSync))
	w.p.lastSync = addr
}

// Lock records a lock-acquire attempt (including ones that block).
func (w *Writer) Lock(addr uint64) { w.sync(EvLock, addr); w.stats.Locks++ }

// Unlock records a lock release.
func (w *Writer) Unlock(addr uint64) { w.sync(EvUnlock, addr); w.stats.Unlocks++ }

// Join records a join attempt on a thread handle.
func (w *Writer) Join(target uint64) {
	w.event(EvJoin)
	w.payload = binary.AppendUvarint(w.payload, target)
	w.stats.Joins++
}

// Spawn records a successful thread spawn and the new thread's id.
func (w *Writer) Spawn(tid uint64) {
	w.event(EvSpawn)
	w.payload = binary.AppendUvarint(w.payload, tid)
	w.stats.Spawns++
}

// Alloc records a heap allocation (address and requested size).
func (w *Writer) Alloc(addr, size uint64) {
	w.event(EvAlloc)
	w.payload = binary.AppendVarint(w.payload, int64(addr-w.p.lastAlloc))
	w.payload = binary.AppendUvarint(w.payload, size)
	w.p.lastAlloc = addr
	w.stats.Allocs++
}

// Free records a heap release.
func (w *Writer) Free(addr uint64) {
	w.event(EvFree)
	w.payload = binary.AppendVarint(w.payload, int64(addr-w.p.lastAlloc))
	w.p.lastAlloc = addr
	w.stats.Frees++
}

// EndBatch closes the current scheduler quantum: tid ran psteps
// non-hook instructions with thooks trailing hook dispatches, emitting
// the accumulated payload.
func (w *Writer) EndBatch(tid int, psteps, thooks uint64) {
	w.flushRep()
	b := w.scratch[:0]
	b = append(b, recBatch)
	b = binary.AppendVarint(b, int64(tid)-w.lastTid)
	w.lastTid = int64(tid)
	b = binary.AppendUvarint(b, psteps)
	b = binary.AppendUvarint(b, thooks)
	b = binary.AppendUvarint(b, uint64(len(w.payload)))
	w.write(b)
	w.write(w.payload)
	w.payload = w.payload[:0]
	w.stats.Batches++
	w.stats.RawBytes += rawBatchCost
}

// End writes the success terminal (the program's exit value) and
// returns the sticky error state. A Writer is single-terminal: later
// terminal calls are no-ops.
func (w *Writer) End(exit uint64) error {
	if w.done {
		return w.err
	}
	w.done = true
	var b []byte
	b = append(b, recEnd)
	b = binary.AppendUvarint(b, exit)
	w.write(b)
	w.stats.RawBytes += 9
	return w.err
}

// Fail writes the failure terminal: the run ended with a typed error of
// the given kind and message, which replay reproduces verbatim.
func (w *Writer) Fail(kind, msg string) error {
	if w.done {
		return w.err
	}
	w.done = true
	var b []byte
	b = append(b, recFail)
	b = binary.AppendUvarint(b, uint64(len(kind)))
	b = append(b, kind...)
	b = binary.AppendUvarint(b, uint64(len(msg)))
	b = append(b, msg...)
	w.write(b)
	w.stats.RawBytes += uint64(9 + len(kind) + len(msg))
	return w.err
}

// ---------------------------------------------------------------------------
// Trace + Decode

// Trace is a decoded, validated trace. The underlying bytes are
// read-only after Decode: any number of Cursors may replay the same
// Trace concurrently (each cursor carries its own predictor state).
type Trace struct {
	data    []byte
	ProgFP  uint64
	Seed    int64
	Quantum int
	stats   Stats
	body    int // offset of the first record
}

// Stats returns the aggregate statistics computed during Decode.
func (t *Trace) Stats() Stats { return t.stats }

// Len returns the encoded size in bytes.
func (t *Trace) Len() int { return len(t.data) }

// Decode validates data as a complete trace — header, every record,
// every event, exactly one terminal — and returns it ready for replay.
// data is retained (not copied); the caller must not mutate it.
func Decode(data []byte) (*Trace, error) {
	t := &Trace{data: data}
	if len(data) < len(Magic) || string(data[:len(Magic)]) != Magic {
		return nil, &DecodeError{Off: 0, Msg: "bad magic"}
	}
	pos := len(Magic)
	u := func(what string) (uint64, error) {
		v, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return 0, &DecodeError{Off: pos, Msg: "truncated " + what}
		}
		pos += n
		return v, nil
	}
	ver, err := u("version")
	if err != nil {
		return nil, err
	}
	if ver != Version {
		return nil, &DecodeError{Off: len(Magic), Msg: fmt.Sprintf("unsupported version %d", ver)}
	}
	if len(data)-pos < 8 {
		return nil, &DecodeError{Off: pos, Msg: "truncated fingerprint"}
	}
	t.ProgFP = binary.LittleEndian.Uint64(data[pos:])
	pos += 8
	seed, n := binary.Varint(data[pos:])
	if n <= 0 {
		return nil, &DecodeError{Off: pos, Msg: "truncated seed"}
	}
	pos += n
	t.Seed = seed
	q, err := u("quantum")
	if err != nil {
		return nil, err
	}
	if q > 1<<30 {
		return nil, &DecodeError{Off: pos, Msg: "implausible quantum"}
	}
	t.Quantum = int(q)
	t.body = pos

	// Full validation walk: decode every record and event once, so
	// replay (and every other consumer) can trust the structure.
	st := Stats{ProgFP: t.ProgFP, Seed: t.Seed, Quantum: t.Quantum, Bytes: uint64(len(data))}
	st.RawBytes = uint64(t.body)
	c := t.Cursor()
	terminal := false
walk:
	for {
		rec, err := c.NextRecord()
		if err != nil {
			if errors.Is(err, io.EOF) {
				break walk
			}
			return nil, err
		}
		switch rec.Kind {
		case RecBatch:
			st.Batches++
			st.RawBytes += rawBatchCost
			for {
				ev, err := c.Next()
				if err == ErrBatchDrained {
					break
				}
				if err != nil {
					return nil, err
				}
				st.Events++
				st.RawBytes += rawCost(ev.Kind)
				switch ev.Kind {
				case EvLoad:
					st.Loads++
				case EvStore:
					st.Stores++
				case EvLib:
					st.Libs++
				case EvLock:
					st.Locks++
				case EvUnlock:
					st.Unlocks++
				case EvJoin:
					st.Joins++
				case EvSpawn:
					st.Spawns++
				case EvAlloc:
					st.Allocs++
				case EvFree:
					st.Frees++
				}
			}
		case RecEnd, RecFail:
			terminal = true
			st.RawBytes += 9
			if rec.Kind == RecFail {
				st.RawBytes += uint64(len(rec.FailKind) + len(rec.FailMsg))
			}
			// The terminal must be the final record.
			if _, err := c.NextRecord(); !errors.Is(err, io.EOF) {
				return nil, &DecodeError{Off: c.pos, Msg: "data after terminal record"}
			}
			break walk
		}
	}
	if !terminal {
		return nil, &DecodeError{Off: pos, Msg: "missing terminal record (torn trace)"}
	}
	st.RepRuns = c.repRuns
	t.stats = st
	return t, nil
}

// ---------------------------------------------------------------------------
// Cursor

// RecKind identifies a record surfaced by Cursor.NextRecord.
type RecKind uint8

// Record kinds.
const (
	RecBatch RecKind = iota
	RecEnd
	RecFail
)

// Rec is one decoded record.
type Rec struct {
	Kind     RecKind
	Tid      int    // RecBatch: thread granted the quantum
	PSteps   uint64 // RecBatch: non-hook instructions retired
	THooks   uint64 // RecBatch: trailing hook dispatches
	Exit     uint64 // RecEnd
	FailKind string // RecFail
	FailMsg  string // RecFail
}

// Event is one decoded batch event. Field use per kind: load
// {Addr,Val}; store/lock/unlock/free {Addr}; lib {Val=ret}; join
// {Val=target}; spawn {Val=tid}; alloc {Addr, Val=size}.
type Event struct {
	Kind EvKind
	Addr uint64
	Val  uint64
}

// Cursor walks a Trace record by record. Each Cursor owns its predictor
// state, so concurrent replays of one Trace are safe.
type Cursor struct {
	t   *Trace
	pos int
	p   preds

	payloadEnd int // absolute end of the current batch payload, -1 outside a batch
	repKind    EvKind
	repLeft    uint64
	lastTid    int64
	repRuns    uint64
}

// Cursor returns a fresh cursor positioned at the first record.
func (t *Trace) Cursor() *Cursor {
	return &Cursor{t: t, pos: t.body, payloadEnd: -1}
}

func (c *Cursor) uvarint(limit int, what string) (uint64, error) {
	v, n := binary.Uvarint(c.t.data[c.pos:limit])
	if n <= 0 {
		return 0, &DecodeError{Off: c.pos, Msg: "truncated " + what}
	}
	c.pos += n
	return v, nil
}

func (c *Cursor) svarint(limit int, what string) (int64, error) {
	v, n := binary.Varint(c.t.data[c.pos:limit])
	if n <= 0 {
		return 0, &DecodeError{Off: c.pos, Msg: "truncated " + what}
	}
	c.pos += n
	return v, nil
}

// NextRecord advances to the next record. Any unconsumed events of the
// current batch are decoded and discarded first (keeping predictor
// state aligned with the writer's). Returns io.EOF at end of data.
func (c *Cursor) NextRecord() (Rec, error) {
	if c.payloadEnd >= 0 {
		for {
			_, err := c.Next()
			if err == ErrBatchDrained {
				break
			}
			if err != nil {
				return Rec{}, err
			}
		}
		c.payloadEnd = -1
	}
	data := c.t.data
	if c.pos >= len(data) {
		return Rec{}, io.EOF
	}
	tag := data[c.pos]
	c.pos++
	end := len(data)
	switch tag {
	case recBatch:
		d, err := c.svarint(end, "batch tid")
		if err != nil {
			return Rec{}, err
		}
		c.lastTid += d
		if c.lastTid < 0 || c.lastTid > 1<<20 {
			return Rec{}, &DecodeError{Off: c.pos, Msg: "implausible batch tid"}
		}
		psteps, err := c.uvarint(end, "batch psteps")
		if err != nil {
			return Rec{}, err
		}
		thooks, err := c.uvarint(end, "batch thooks")
		if err != nil {
			return Rec{}, err
		}
		plen, err := c.uvarint(end, "batch payload length")
		if err != nil {
			return Rec{}, err
		}
		if plen > uint64(len(data)-c.pos) {
			return Rec{}, &DecodeError{Off: c.pos, Msg: fmt.Sprintf("batch payload length %d exceeds remaining %d bytes", plen, len(data)-c.pos)}
		}
		c.payloadEnd = c.pos + int(plen)
		return Rec{Kind: RecBatch, Tid: int(c.lastTid), PSteps: psteps, THooks: thooks}, nil
	case recEnd:
		exit, err := c.uvarint(end, "exit value")
		if err != nil {
			return Rec{}, err
		}
		return Rec{Kind: RecEnd, Exit: exit}, nil
	case recFail:
		kind, err := c.str(end, "fail kind")
		if err != nil {
			return Rec{}, err
		}
		msg, err := c.str(end, "fail message")
		if err != nil {
			return Rec{}, err
		}
		return Rec{Kind: RecFail, FailKind: kind, FailMsg: msg}, nil
	default:
		return Rec{}, &DecodeError{Off: c.pos - 1, Msg: fmt.Sprintf("unknown record tag %#x", tag)}
	}
}

func (c *Cursor) str(limit int, what string) (string, error) {
	n, err := c.uvarint(limit, what+" length")
	if err != nil {
		return "", err
	}
	if n > failStringCap || n > uint64(limit-c.pos) {
		return "", &DecodeError{Off: c.pos, Msg: fmt.Sprintf("%s length %d exceeds available data", what, n)}
	}
	s := string(c.t.data[c.pos : c.pos+int(n)])
	c.pos += int(n)
	return s, nil
}

// Next decodes the next event of the current batch, expanding
// run-length records into their individual loads/stores. Returns
// ErrBatchDrained when the batch payload is exhausted.
func (c *Cursor) Next() (Event, error) {
	if c.repLeft > 0 {
		c.repLeft--
		if c.repKind == evRepLoad {
			a, v := c.p.loadA.predict(), c.p.loadV.predict()
			c.p.loadA.observe(a)
			c.p.loadV.observe(v)
			return Event{Kind: EvLoad, Addr: a, Val: v}, nil
		}
		a := c.p.storeA.predict()
		c.p.storeA.observe(a)
		return Event{Kind: EvStore, Addr: a}, nil
	}
	if c.payloadEnd < 0 || c.pos >= c.payloadEnd {
		return Event{}, ErrBatchDrained
	}
	limit := c.payloadEnd
	tag := EvKind(c.t.data[c.pos])
	c.pos++
	switch tag {
	case EvLoad:
		ar, err := c.svarint(limit, "load address residual")
		if err != nil {
			return Event{}, err
		}
		vr, err := c.svarint(limit, "load value residual")
		if err != nil {
			return Event{}, err
		}
		a := c.p.loadA.predict() + uint64(ar)
		v := c.p.loadV.predict() + uint64(vr)
		c.p.loadA.observe(a)
		c.p.loadV.observe(v)
		return Event{Kind: EvLoad, Addr: a, Val: v}, nil
	case EvStore:
		ar, err := c.svarint(limit, "store address residual")
		if err != nil {
			return Event{}, err
		}
		a := c.p.storeA.predict() + uint64(ar)
		c.p.storeA.observe(a)
		return Event{Kind: EvStore, Addr: a}, nil
	case evRepLoad, evRepStore:
		n, err := c.uvarint(limit, "rep count")
		if err != nil {
			return Event{}, err
		}
		if n == 0 {
			return Event{}, &DecodeError{Off: c.pos, Msg: "empty rep run"}
		}
		c.repKind, c.repLeft = tag, n
		c.repRuns++
		return c.Next()
	case EvLib:
		d, err := c.svarint(limit, "lib return delta")
		if err != nil {
			return Event{}, err
		}
		c.p.lastRet += uint64(d)
		return Event{Kind: EvLib, Val: c.p.lastRet}, nil
	case EvLock, EvUnlock:
		d, err := c.svarint(limit, "sync address delta")
		if err != nil {
			return Event{}, err
		}
		c.p.lastSync += uint64(d)
		return Event{Kind: tag, Addr: c.p.lastSync}, nil
	case EvJoin:
		v, err := c.uvarint(limit, "join target")
		if err != nil {
			return Event{}, err
		}
		return Event{Kind: EvJoin, Val: v}, nil
	case EvSpawn:
		v, err := c.uvarint(limit, "spawn tid")
		if err != nil {
			return Event{}, err
		}
		return Event{Kind: EvSpawn, Val: v}, nil
	case EvAlloc:
		d, err := c.svarint(limit, "alloc address delta")
		if err != nil {
			return Event{}, err
		}
		sz, err := c.uvarint(limit, "alloc size")
		if err != nil {
			return Event{}, err
		}
		c.p.lastAlloc += uint64(d)
		return Event{Kind: EvAlloc, Addr: c.p.lastAlloc, Val: sz}, nil
	case EvFree:
		d, err := c.svarint(limit, "free address delta")
		if err != nil {
			return Event{}, err
		}
		c.p.lastAlloc += uint64(d)
		return Event{Kind: EvFree, Addr: c.p.lastAlloc}, nil
	default:
		return Event{}, &DecodeError{Off: c.pos - 1, Msg: fmt.Sprintf("unknown event tag %#x", uint8(tag))}
	}
}
