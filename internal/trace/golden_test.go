package trace_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/mir"
	"repro/internal/trace"
	"repro/internal/workloads"
)

var update = flag.Bool("update", false, "rewrite the golden trace pins")

// quickstartUAF mirrors examples/quickstart's analyzed program:
// allocate, fill, free, store after free. Its recorded trace pins the
// encoder on the smallest interesting stream — one allocation, a store
// run, one free.
func quickstartUAF() (*mir.Program, error) {
	p := mir.NewProgram()
	b := p.NewFunc("main", 0)
	buf := b.Call("malloc", mir.C(64))
	b.Loop(mir.C(8), func(i mir.Reg) {
		off := b.Mul(mir.R(i), mir.C(8))
		addr := b.Add(mir.R(buf), mir.R(off))
		b.Store(mir.R(addr), mir.R(i), 8)
	})
	b.CallVoid("free", mir.R(buf))
	b.Store(mir.R(buf), mir.C(99), 8)
	b.RetVal(mir.C(0))
	return p, nil
}

// goldenCases are the pinned recordings: the quickstart bug program and
// one library-sanitizer workload whose stream carries SSL library
// results and multi-threaded quanta.
var goldenCases = []struct {
	name  string
	build func() (*mir.Program, error)
}{
	{"quickstart_uaf", quickstartUAF},
	{"memcached_sslleak", func() (*mir.Program, error) {
		return workloads.BuildBug("memcached", workloads.SizeTiny, workloads.BugSSLLeak)
	}},
}

// TestGoldenTraces pins the recorded byte streams: for each case the
// trace must re-record byte-identically within a run (the VM and the
// encoder are deterministic) and match the checked-in pin across
// commits — any encoding or VM-event change shows up as a golden diff
// here, regenerated deliberately with -update.
func TestGoldenTraces(t *testing.T) {
	opt := core.RunOptions{Seed: 1, MaxSteps: 4 << 20}
	for _, c := range goldenCases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			p, err := c.build()
			if err != nil {
				t.Fatal(err)
			}
			data, _, err := core.RecordTrace(p, opt)
			if err != nil {
				t.Fatalf("record: %v", err)
			}
			again, _, err := core.RecordTrace(p, opt)
			if err != nil {
				t.Fatalf("re-record: %v", err)
			}
			if !bytes.Equal(data, again) {
				t.Fatalf("re-recording is not byte-identical: %d vs %d bytes", len(data), len(again))
			}
			tr, err := trace.Decode(data)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if s := tr.Stats(); s.Events == 0 || s.Batches == 0 {
				t.Fatalf("degenerate recording: %+v", s)
			}

			golden := filepath.Join("testdata", "golden", c.name+".trc")
			if *update {
				if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, data, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (run with -update to create)", err)
			}
			if !bytes.Equal(data, want) {
				t.Errorf("recorded trace differs from golden pin %s: %d bytes recorded, %d pinned (regenerate deliberately with -update)",
					golden, len(data), len(want))
			}
		})
	}
}
