package trace

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
)

// genEvent is one event fed to the writer and expected back from the
// cursor (the writer's run-length folding must be invisible).
type genEvent struct {
	kind EvKind
	a, v uint64
}

// genTrace writes a pseudo-random but structured event stream (strided
// loads/stores so rep runs actually occur, plus every other event kind)
// and returns the encoded bytes with the expected per-batch events.
func genTrace(t *testing.T, seed int64, batches int) ([]byte, [][]genEvent, []Rec) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var buf bytes.Buffer
	w := NewWriter(&buf, 0xfeedface, seed, 64)
	var wantEvents [][]genEvent
	var wantRecs []Rec
	addr := uint64(0x10000)
	for b := 0; b < batches; b++ {
		var evs []genEvent
		n := 1 + rng.Intn(20)
		for i := 0; i < n; i++ {
			switch rng.Intn(9) {
			case 0, 1, 2: // strided loads: mostly predictable
				for j := 0; j < 1+rng.Intn(6); j++ {
					addr += 8
					val := addr * 3
					w.Load(addr, val)
					evs = append(evs, genEvent{EvLoad, addr, val})
				}
			case 3, 4: // strided stores
				for j := 0; j < 1+rng.Intn(6); j++ {
					addr += 16
					w.Store(addr)
					evs = append(evs, genEvent{EvStore, addr, 0})
				}
			case 5:
				r := rng.Uint64()
				w.Lib(r)
				evs = append(evs, genEvent{EvLib, 0, r})
			case 6:
				l := uint64(0x2000 + rng.Intn(4)*8)
				if rng.Intn(2) == 0 {
					w.Lock(l)
					evs = append(evs, genEvent{EvLock, l, 0})
				} else {
					w.Unlock(l)
					evs = append(evs, genEvent{EvUnlock, l, 0})
				}
			case 7:
				a, sz := uint64(0x40000+rng.Intn(1024)*16), uint64(rng.Intn(256))
				w.Alloc(a, sz)
				evs = append(evs, genEvent{EvAlloc, a, sz})
				if rng.Intn(2) == 0 {
					w.Free(a)
					evs = append(evs, genEvent{EvFree, a, 0})
				}
			case 8:
				tid := uint64(rng.Intn(8))
				if rng.Intn(2) == 0 {
					w.Spawn(tid)
					evs = append(evs, genEvent{EvSpawn, 0, tid})
				} else {
					w.Join(tid)
					evs = append(evs, genEvent{EvJoin, 0, tid})
				}
			}
		}
		tid := rng.Intn(4)
		psteps, thooks := uint64(1+rng.Intn(64)), uint64(rng.Intn(3))
		w.EndBatch(tid, psteps, thooks)
		wantEvents = append(wantEvents, evs)
		wantRecs = append(wantRecs, Rec{Kind: RecBatch, Tid: tid, PSteps: psteps, THooks: thooks})
	}
	if seed%2 == 0 {
		w.End(42)
		wantRecs = append(wantRecs, Rec{Kind: RecEnd, Exit: 42})
	} else {
		w.Fail("heaplimit", "heap budget 64 bytes exceeded")
		wantRecs = append(wantRecs, Rec{Kind: RecFail, FailKind: "heaplimit", FailMsg: "heap budget 64 bytes exceeded"})
	}
	if err := w.Err(); err != nil {
		t.Fatalf("writer error: %v", err)
	}
	return buf.Bytes(), wantEvents, wantRecs
}

// TestRoundTrip is the encode→decode property: for many seeds, the
// cursor yields exactly the event sequence the writer was fed, in
// order, with identical operands — through rep-run folding, predictor
// resets, and batch boundaries.
func TestRoundTrip(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		data, wantEvents, wantRecs := genTrace(t, seed, 1+int(seed)%7)
		tr, err := Decode(data)
		if err != nil {
			t.Fatalf("seed %d: Decode: %v", seed, err)
		}
		if tr.ProgFP != 0xfeedface || tr.Seed != seed || tr.Quantum != 64 {
			t.Fatalf("seed %d: header mismatch: %+v", seed, tr)
		}
		c := tr.Cursor()
		for bi, want := range wantEvents {
			rec, err := c.NextRecord()
			if err != nil {
				t.Fatalf("seed %d batch %d: NextRecord: %v", seed, bi, err)
			}
			if rec != wantRecs[bi] {
				t.Fatalf("seed %d batch %d: rec %+v, want %+v", seed, bi, rec, wantRecs[bi])
			}
			for ei, we := range want {
				ev, err := c.Next()
				if err != nil {
					t.Fatalf("seed %d batch %d event %d: %v", seed, bi, ei, err)
				}
				if ev.Kind != we.kind || ev.Addr != we.a || ev.Val != we.v {
					t.Fatalf("seed %d batch %d event %d: got %+v, want %+v", seed, bi, ei, ev, we)
				}
			}
			if _, err := c.Next(); err != ErrBatchDrained {
				t.Fatalf("seed %d batch %d: expected drain, got %v", seed, bi, err)
			}
		}
		rec, err := c.NextRecord()
		if err != nil {
			t.Fatalf("seed %d: terminal: %v", seed, err)
		}
		if rec != wantRecs[len(wantRecs)-1] {
			t.Fatalf("seed %d: terminal %+v, want %+v", seed, rec, wantRecs[len(wantRecs)-1])
		}
		if _, err := c.NextRecord(); !errors.Is(err, io.EOF) {
			t.Fatalf("seed %d: expected EOF after terminal, got %v", seed, err)
		}
	}
}

// TestRecordSkipsUnconsumedEvents pins NextRecord's drain semantics:
// advancing past a batch without consuming its events keeps predictor
// state (and therefore later batches) intact.
func TestRecordSkipsUnconsumedEvents(t *testing.T) {
	data, wantEvents, _ := genTrace(t, 4, 3)
	tr, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	c := tr.Cursor()
	if _, err := c.NextRecord(); err != nil { // batch 0, skip events
		t.Fatal(err)
	}
	if _, err := c.NextRecord(); err != nil { // batch 1
		t.Fatal(err)
	}
	for ei, we := range wantEvents[1] {
		ev, err := c.Next()
		if err != nil {
			t.Fatalf("event %d: %v", ei, err)
		}
		if ev.Kind != we.kind || ev.Addr != we.a || ev.Val != we.v {
			t.Fatalf("event %d after skip: got %+v, want %+v", ei, ev, we)
		}
	}
}

// TestCompression asserts the encoding actually compresses the strided
// streams it was designed for.
func TestCompression(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 1, 1, 64)
	for i := 0; i < 1000; i++ { // strided scan: rep runs collapse it
		w.Load(uint64(0x1000+i*8), uint64(i))
	}
	for i := 0; i < 1000; i++ {
		w.Store(uint64(0x9000 + i*8))
	}
	w.EndBatch(0, 2000, 0)
	w.End(0)
	tr, err := Decode(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	st := tr.Stats()
	if st.Loads != 1000 || st.Stores != 1000 {
		t.Fatalf("stats: %+v", st)
	}
	if st.Ratio() < 50 {
		t.Fatalf("strided stream should compress >50x, got %.1fx (%d bytes, %d raw)", st.Ratio(), st.Bytes, st.RawBytes)
	}
	if st.RepRuns == 0 {
		t.Fatal("expected rep runs on a perfectly strided stream")
	}

	// Alternating load/store flushes the rep run each switch but the
	// residuals are still zero-adjacent varints: delta encoding alone
	// must beat fixed-width by a wide margin.
	buf.Reset()
	w = NewWriter(&buf, 1, 1, 64)
	for i := 0; i < 1000; i++ {
		a := uint64(0x1000 + i*8)
		w.Load(a, uint64(i))
		w.Store(a)
	}
	w.EndBatch(0, 2000, 0)
	w.End(0)
	tr, err = Decode(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if r := tr.Stats().Ratio(); r < 4 {
		t.Fatalf("alternating stream should compress >4x, got %.1fx", r)
	}
}

// TestDecodeErrors pins the typed-error contract on malformed inputs.
func TestDecodeErrors(t *testing.T) {
	valid, _, _ := genTrace(t, 2, 2)
	cases := map[string][]byte{
		"empty":         {},
		"bad magic":     []byte("NOTATRACE"),
		"header only":   valid[:len(Magic)+1],
		"torn batch":    valid[:len(valid)-3],
		"no terminal":   valid[:len(valid)-2],
		"trailing junk": append(append([]byte{}, valid...), 0xff, 0xff),
	}
	for name, data := range cases {
		_, err := Decode(data)
		var de *DecodeError
		if !errors.As(err, &de) {
			t.Errorf("%s: want *DecodeError, got %v", name, err)
		}
	}
	if _, err := Decode(valid); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
}

// TestHugeLengthField pins the pre-allocation cap: a batch claiming a
// payload far larger than the data must fail without allocating it.
func TestHugeLengthField(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 1, 1, 64)
	w.Load(1, 2)
	w.EndBatch(0, 1, 0)
	w.End(0)
	data := buf.Bytes()
	// Rewrite the batch payload length to a huge varint by crafting a
	// fresh record stream: header + batch with absurd length.
	hdr := data[:bytes.IndexByte(data, recBatch)]
	crafted := append(append([]byte{}, hdr...), recBatch, 0 /*Δtid*/, 1 /*psteps*/, 0 /*thooks*/)
	crafted = append(crafted, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f) // ~9e18 payload length
	var de *DecodeError
	if _, err := Decode(crafted); !errors.As(err, &de) {
		t.Fatalf("want *DecodeError for huge payload length, got %v", err)
	}
}

// TestConcurrentCursors verifies a decoded Trace is safely shared: many
// cursors walking the same bytes in parallel see identical streams.
// Run under -race this is the trace-layer half of the concurrent-replay
// guarantee.
func TestConcurrentCursors(t *testing.T) {
	data, _, _ := genTrace(t, 6, 5)
	tr, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	walk := func() []Event {
		var out []Event
		c := tr.Cursor()
		for {
			rec, err := c.NextRecord()
			if errors.Is(err, io.EOF) || rec.Kind != RecBatch {
				return out
			}
			if err != nil {
				t.Error(err)
				return out
			}
			for {
				ev, err := c.Next()
				if err == ErrBatchDrained {
					break
				}
				if err != nil {
					t.Error(err)
					return out
				}
				out = append(out, ev)
			}
		}
	}
	ref := walk()
	done := make(chan []Event, 8)
	for i := 0; i < 8; i++ {
		go func() { done <- walk() }()
	}
	for i := 0; i < 8; i++ {
		got := <-done
		if len(got) != len(ref) {
			t.Fatalf("concurrent walk saw %d events, want %d", len(got), len(ref))
		}
		for j := range got {
			if got[j] != ref[j] {
				t.Fatalf("concurrent walk diverged at event %d: %+v vs %+v", j, got[j], ref[j])
			}
		}
	}
}
