package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzTraceDecoder hammers Decode and the cursor walk with arbitrary
// bytes. The contract under fuzz: a typed *DecodeError (or a clean
// decode), never a panic, never an allocation sized by an untrusted
// length field. When the input does decode, walking it must terminate
// and a second decode must agree — Decode is a pure function of the
// bytes.
func FuzzTraceDecoder(f *testing.F) {
	// Seed corpus: a small valid trace, its torn-final-batch prefix, a
	// bad magic, and a huge claimed payload length.
	var buf bytes.Buffer
	w := NewWriter(&buf, 0xabc, 3, 64)
	w.Load(0x1000, 7)
	w.Load(0x1008, 9)
	w.Store(0x2000)
	w.Lib(1)
	w.Lock(0x3000)
	w.Unlock(0x3000)
	w.Alloc(0x4000, 64)
	w.Free(0x4000)
	w.Spawn(1)
	w.Join(1)
	w.EndBatch(0, 12, 2)
	w.EndBatch(1, 3, 0)
	w.End(0)
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-4]) // torn final batch
	f.Add([]byte("NOTATRACE tail"))
	huge := append([]byte{}, valid[:len(Magic)+1+8+1+1]...)
	huge = append(huge, recBatch, 0, 1, 0, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f)
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Decode(data)
		if err != nil {
			var de *DecodeError
			if !errors.As(err, &de) {
				t.Fatalf("Decode returned untyped error %T: %v", err, err)
			}
			return
		}
		// A decoded trace must be fully walkable, and re-decoding the
		// same bytes must succeed with identical stats.
		c := tr.Cursor()
		for {
			rec, err := c.NextRecord()
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				t.Fatalf("validated trace failed to walk: %v", err)
			}
			if rec.Kind != RecBatch {
				continue
			}
			for {
				if _, err := c.Next(); err != nil {
					if err == ErrBatchDrained {
						break
					}
					t.Fatalf("validated batch failed to walk: %v", err)
				}
			}
		}
		tr2, err := Decode(data)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if tr.Stats() != tr2.Stats() {
			t.Fatalf("decode not deterministic: %+v vs %+v", tr.Stats(), tr2.Stats())
		}
	})
}
