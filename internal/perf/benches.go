package perf

import (
	"fmt"

	"repro/internal/analyses"
	"repro/internal/compiler"
	"repro/internal/instrument"
	"repro/internal/meta"
	"repro/internal/mir"
	"repro/internal/vm"
)

// Bench fixture dimensions. 4096 warm keys keeps every container's
// working set resident while still exercising real probing; entries are
// two words like the common coalesced-group layouts.
const (
	benchKeys = 4096
	benchEW   = 2
)

// benchKeySet returns a deterministic pseudo-random key stream
// (SplitMix64) bounded below limit; limit 0 keeps full 64-bit spread.
func benchKeySet(n int, limit uint64) []uint64 {
	keys := make([]uint64, n)
	x := uint64(0x51_7c_c1_b7_27_22_0a_95)
	for i := range keys {
		x += 0x9E3779B97F4A7C15
		z := x
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		z ^= z >> 31
		if limit != 0 {
			z %= limit
		}
		keys[i] = z
	}
	return keys
}

// singleKeyed abstracts the one-key containers for fixture reuse.
type singleKeyed interface {
	Entry(key uint64) []uint64
	Peek(key uint64) []uint64
	ForEach(fn func(key uint64, entry []uint64))
}

func getBench(c singleKeyed, keys []uint64) func(n int) {
	for _, k := range keys {
		meta.StoreField(c.Entry(k), 0, 64, k)
	}
	return func(n int) {
		var acc uint64
		for i := 0; i < n; i++ {
			e := c.Peek(keys[i%len(keys)])
			if e != nil {
				acc += meta.LoadField(e, 0, 64)
			}
		}
		sink += acc
	}
}

func setBench(c singleKeyed, keys []uint64) func(n int) {
	for _, k := range keys {
		c.Entry(k)
	}
	return func(n int) {
		for i := 0; i < n; i++ {
			meta.StoreField(c.Entry(keys[i%len(keys)]), 0, 64, uint64(i))
		}
	}
}

func iterateBench(c singleKeyed, keys []uint64) func(n int) {
	for _, k := range keys {
		meta.StoreField(c.Entry(k), 0, 64, k)
	}
	return func(n int) {
		var acc uint64
		// One fn unit = one full sweep; per-op cost is amortized per
		// visited entry below by sweeping max(1, n/len(keys)) times.
		sweeps := n / len(keys)
		if sweeps == 0 {
			sweeps = 1
		}
		for s := 0; s < sweeps; s++ {
			c.ForEach(func(_ uint64, e []uint64) { acc += e[0] })
		}
		sink += acc
	}
}

// containerBenches builds Get/Set/Iterate for every single-key
// container plus the two-key HashMap2 and the map-backed references.
func containerBenches() []Bench {
	tmpl := []uint64{0, 0}
	type mk struct {
		name string
		new  func() singleKeyed
		keys []uint64
	}
	// ArrayMap needs a bounded domain; ShadowMap a key ceiling;
	// PageTableMap and HashMap take raw 64-bit keys. Address-shaped keys
	// (clustered, 8-byte granules) exercise the page/chunk TLBs the way
	// instrumented loads do.
	addrKeys := benchKeySet(benchKeys, 1<<24)
	makers := []mk{
		{"array", func() singleKeyed { return meta.NewArrayMap(benchKeys, benchEW, tmpl) }, benchKeySet(benchKeys, benchKeys)},
		{"shadow", func() singleKeyed { return meta.NewShadowMap(1<<24, benchEW, tmpl) }, addrKeys},
		{"pagetable", func() singleKeyed { return meta.NewPageTableMap(benchEW, tmpl) }, addrKeys},
		{"hash", func() singleKeyed { return meta.NewHashMap(benchEW, tmpl) }, benchKeySet(benchKeys, 0)},
		{"refmap/hash", func() singleKeyed { return newMapHashMap(benchEW, tmpl) }, benchKeySet(benchKeys, 0)},
	}
	var out []Bench
	for _, m := range makers {
		m := m
		prefix := "container/" + m.name
		if m.name == "refmap/hash" {
			prefix = "refmap/hash"
		}
		out = append(out,
			Bench{prefix + "/get", func() func(int) { return getBench(m.new(), m.keys) }},
			Bench{prefix + "/set", func() func(int) { return setBench(m.new(), m.keys) }},
			Bench{prefix + "/iterate", func() func(int) { return iterateBench(m.new(), m.keys) }},
		)
	}

	// Two-key tables have their own API shape.
	k1 := benchKeySet(benchKeys, 0)
	k2 := benchKeySet(benchKeys, 64)
	out = append(out,
		Bench{"container/hash2/get", func() func(int) {
			c := meta.NewHashMap2(benchEW, tmpl)
			for i := range k1 {
				meta.StoreField(c.Entry(k1[i], k2[i]), 0, 64, k1[i])
			}
			return func(n int) {
				var acc uint64
				for i := 0; i < n; i++ {
					j := i % len(k1)
					if e := c.Peek(k1[j], k2[j]); e != nil {
						acc += meta.LoadField(e, 0, 64)
					}
				}
				sink += acc
			}
		}},
		Bench{"container/hash2/set", func() func(int) {
			c := meta.NewHashMap2(benchEW, tmpl)
			for i := range k1 {
				c.Entry(k1[i], k2[i])
			}
			return func(n int) {
				for i := 0; i < n; i++ {
					j := i % len(k1)
					meta.StoreField(c.Entry(k1[j], k2[j]), 0, 64, uint64(i))
				}
			}
		}},
		Bench{"container/hash2/iterate", func() func(int) {
			c := meta.NewHashMap2(benchEW, tmpl)
			for i := range k1 {
				meta.StoreField(c.Entry(k1[i], k2[i]), 0, 64, k1[i])
			}
			return func(n int) {
				var acc uint64
				sweeps := n / len(k1)
				if sweeps == 0 {
					sweeps = 1
				}
				for s := 0; s < sweeps; s++ {
					c.ForEach(func(_, _ uint64, e []uint64) { acc += e[0] })
				}
				sink += acc
			}
		}},
		Bench{"refmap/hash2/get", func() func(int) {
			c := newMapHashMap2(benchEW, tmpl)
			for i := range k1 {
				meta.StoreField(c.Entry(k1[i], k2[i]), 0, 64, k1[i])
			}
			return func(n int) {
				var acc uint64
				for i := 0; i < n; i++ {
					j := i % len(k1)
					if e := c.Peek(k1[j], k2[j]); e != nil {
						acc += meta.LoadField(e, 0, 64)
					}
				}
				sink += acc
			}
		}},
		Bench{"refmap/hash2/set", func() func(int) {
			c := newMapHashMap2(benchEW, tmpl)
			for i := range k1 {
				c.Entry(k1[i], k2[i])
			}
			return func(n int) {
				for i := 0; i < n; i++ {
					j := i % len(k1)
					meta.StoreField(c.Entry(k1[j], k2[j]), 0, 64, uint64(i))
				}
			}
		}},
	)
	return out
}

// dispatchProgram builds an effectively endless store/load loop over a
// small buffer — the steady-state access stream every per-access
// analysis hooks. withLocks adds a lock/unlock pair per iteration for
// lock-discipline analyses.
func dispatchProgram(withLocks bool) *mir.Program {
	p := mir.NewProgram()
	b := p.NewFunc("main", 0)
	buf := b.Call("malloc", mir.C(512))
	b.Loop(mir.C(1<<40), func(i mir.Reg) {
		idx := b.Bin(mir.OpAnd, mir.R(i), mir.C(63))
		off := b.Mul(mir.R(idx), mir.C(8))
		addr := b.Add(mir.R(buf), mir.R(off))
		b.Store(mir.R(addr), mir.R(i), 8)
		b.Load(mir.R(addr), 8)
		if withLocks {
			b.Lock(mir.C(0x4000))
			b.Unlock(mir.C(0x4000))
		}
	})
	b.RetVal(mir.C(0))
	return p
}

// arithProgram builds the instrumented-quantum dispatch stress for the
// execution-tier comparison: a loop whose body is dominated by pure
// register arithmetic — eight independent xorshift-style mixer lanes,
// interleaved so the hardware always has ready work — with one
// store/load pair per iteration keeping the per-access analysis hooked
// in. The lanes matter: a single serial mixer is latency-bound on its
// own dependency chain and out-of-order execution hides any dispatch
// cost inside the stalls, making every engine measure the same. With
// eight parallel chains the per-instruction overhead (switch dispatch,
// per-op step and opcode accounting) is the bottleneck, which is
// precisely what a dispatch benchmark must expose — and same-kind
// lanes emit adjacent same-opcode instructions, the run shape the
// threaded tier's fused pure loops retire cheapest.
func arithProgram() *mir.Program {
	p := mir.NewProgram()
	b := p.NewFunc("main", 0)
	buf := b.Call("malloc", mir.C(512))
	// Register-carried loop state: Loop's memory-carried induction
	// variable would add hooked load/store traffic every iteration,
	// drowning the dispatch signal under handler time.
	i := b.Const(0)
	lanes := [8]mir.Reg{
		b.Const(0x9E3779B9),
		b.Const(0x1CE4E5B9),
		b.Const(0x133111EB),
		b.Const(0x6659FD93),
		b.Const(0x7F4A7C15),
		b.Const(0x2545F491),
		b.Const(0x4F6CDD1D),
		b.Const(0x5851F42D),
	}
	var s [8]mir.Reg
	for l := range s {
		s[l] = b.NewReg()
	}
	x := b.NewReg()
	body := b.NewBlock()
	exit := b.NewBlock()
	b.Br(body)
	b.SetBlock(body)
	for k := 0; k < 8; k++ {
		for l := range lanes {
			b.BinTo(s[l], mir.OpShr, mir.R(lanes[l]), mir.C(13))
		}
		for l := range lanes {
			b.BinTo(lanes[l], mir.OpXor, mir.R(lanes[l]), mir.R(s[l]))
		}
		for l := range lanes {
			b.BinTo(s[l], mir.OpShl, mir.R(lanes[l]), mir.C(17))
		}
		for l := range lanes {
			b.BinTo(lanes[l], mir.OpAdd, mir.R(lanes[l]), mir.R(s[l]))
		}
	}
	b.BinTo(x, mir.OpXor, mir.R(lanes[0]), mir.R(lanes[1]))
	b.BinTo(x, mir.OpXor, mir.R(x), mir.R(lanes[2]))
	b.BinTo(x, mir.OpXor, mir.R(x), mir.R(lanes[4]))
	b.BinTo(x, mir.OpAnd, mir.R(x), mir.C(63))
	b.BinTo(x, mir.OpMul, mir.R(x), mir.C(8))
	b.BinTo(x, mir.OpAdd, mir.R(buf), mir.R(x))
	b.Store(mir.R(x), mir.R(lanes[3]), 8)
	b.Load(mir.R(x), 8)
	b.BinTo(i, mir.OpAdd, mir.R(i), mir.C(1))
	cond := b.Bin(mir.OpLt, mir.R(i), mir.C(1<<40))
	b.CondBr(mir.R(cond), body, exit)
	b.SetBlock(exit)
	b.RetVal(mir.C(0))
	return p
}

// dispatchBench compiles the named analysis, instruments the program
// built by prog and measures RunQuantum throughput on the given
// execution tier — dispatch plus compiled-handler bodies, end to end.
func dispatchBench(name, analysis string, prog func() *mir.Program, eng vm.Engine) Bench {
	return Bench{name, func() func(int) {
		a, err := analyses.Compile(analysis, compiler.DefaultOptions())
		if err != nil {
			panic(fmt.Sprintf("perf: compile %s: %v", analysis, err))
		}
		analyses.RegisterExternals(a)
		inst, err := instrument.Apply(prog(), a)
		if err != nil {
			panic(fmt.Sprintf("perf: instrument %s: %v", analysis, err))
		}
		rt, err := a.NewRuntime()
		if err != nil {
			panic(fmt.Sprintf("perf: runtime %s: %v", analysis, err))
		}
		m, err := vm.New(inst, vm.Config{Engine: eng, TrackShadow: a.NeedShadow, MaxSteps: 1 << 62})
		if err != nil {
			panic(fmt.Sprintf("perf: vm %s: %v", analysis, err))
		}
		m.Handlers = rt.Handlers()
		if err := m.Start(); err != nil {
			panic(fmt.Sprintf("perf: start %s: %v", analysis, err))
		}
		return func(n int) {
			for i := 0; i < n; i++ {
				if !m.RunQuantum() {
					panic(fmt.Sprintf("perf: %s workload terminated mid-bench", analysis))
				}
			}
		}
	}}
}

// dispatchBenches is the execution-tier half of the suite: every
// analysis-dispatch workload on both engines. The interp entries keep
// their historical names so BENCH_baseline comparisons stay valid.
func dispatchBenches() []Bench {
	accesses := func() *mir.Program { return dispatchProgram(false) }
	withLocks := func() *mir.Program { return dispatchProgram(true) }
	return []Bench{
		dispatchBench("dispatch/uaf", "uaf", accesses, vm.EngineInterp),
		dispatchBench("dispatch/uaf/threaded", "uaf", accesses, vm.EngineThreaded),
		dispatchBench("dispatch/msan", "msan", accesses, vm.EngineInterp),
		dispatchBench("dispatch/msan/threaded", "msan", accesses, vm.EngineThreaded),
		dispatchBench("dispatch/eraser", "eraser", withLocks, vm.EngineInterp),
		dispatchBench("dispatch/eraser/threaded", "eraser", withLocks, vm.EngineThreaded),
		dispatchBench("dispatch/uaf/arith", "uaf", arithProgram, vm.EngineInterp),
		dispatchBench("dispatch/uaf/arith/threaded", "uaf", arithProgram, vm.EngineThreaded),
	}
}

// HotPathBenches is the BenchHotPath suite: per-container Get/Set/
// Iterate, per-analysis handler dispatch on both execution tiers, the
// trace record/replay tier, and the adaptive-PGO swap costs.
func HotPathBenches() []Bench {
	out := append(containerBenches(), dispatchBenches()...)
	out = append(out, traceBenches()...)
	return append(out, adaptBenches()...)
}
