// Package perf is the hot-path micro-benchmark suite and the
// benchmark-regression gate around it. BenchHotPath covers the two
// places every overhead figure in the paper flows through: per-access
// container operations (internal/meta) and per-event handler dispatch
// (internal/vm + compiler-generated closures). Results serialize to
// BENCH_<rev>.json; Compare implements `make benchgate`, failing on a
// >15% geometric-mean regression against the checked-in baseline.
package perf

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"time"
)

// Entry is one benchmark result.
type Entry struct {
	NsPerOp float64 `json:"ns_per_op"`
}

// File is the on-disk BENCH_<rev>.json schema.
type File struct {
	Rev     string           `json:"rev"`
	Go      string           `json:"go"`
	Benches map[string]Entry `json:"benches"`
}

// Bench is one micro-benchmark. Setup builds all fixture state and
// returns the measured closure; fn(n) performs the operation n times.
type Bench struct {
	Name  string
	Setup func() func(n int)
}

// GateThreshold is the geomean regression ratio above which the bench
// gate fails: cur/base geomean > 1+GateThreshold.
const GateThreshold = 0.15

// sink defeats dead-code elimination in read benchmarks.
var sink uint64

// Measure times one bench. A positive budget grows the iteration count
// until a single timed batch spans at least the budget (testing.B-style
// calibration); budget <= 0 is the smoke mode — one fixed small batch
// that exercises the path without trying to be statistically meaningful.
func Measure(b Bench, budget time.Duration) Entry {
	fn := b.Setup()
	fn(1) // warm caches, materialize fixtures
	if budget <= 0 {
		const n = 256
		start := time.Now()
		fn(n)
		return Entry{NsPerOp: float64(time.Since(start).Nanoseconds()) / n}
	}
	n := 64
	for {
		start := time.Now()
		fn(n)
		el := time.Since(start)
		if el >= budget || n >= 1<<28 {
			return Entry{NsPerOp: float64(el.Nanoseconds()) / float64(n)}
		}
		next := n * 2
		if el > 0 {
			// Aim 20% past the budget to finish in one more batch.
			if t := int(float64(n) * 1.2 * float64(budget) / float64(el)); t > next {
				next = t
			}
		} else {
			next = n * 100
		}
		n = next
	}
}

// RunSuite measures every bench in BenchHotPath.
func RunSuite(budget time.Duration) File {
	f := File{
		Rev:     "dev",
		Go:      runtime.Version(),
		Benches: make(map[string]Entry),
	}
	for _, b := range HotPathBenches() {
		f.Benches[b.Name] = Measure(b, budget)
	}
	return f
}

// WriteFile writes f as deterministic, human-diffable JSON.
func WriteFile(path string, f File) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFile loads a BENCH_*.json.
func ReadFile(path string) (File, error) {
	var f File
	data, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return f, fmt.Errorf("%s: %w", path, err)
	}
	if len(f.Benches) == 0 {
		return f, fmt.Errorf("%s: no benches recorded", path)
	}
	return f, nil
}

// Compare computes the geometric-mean ratio cur/base over the benches
// present in both files, plus the sorted list of individual benches that
// regressed by more than threshold. It errors when the files share no
// benches (a renamed suite would otherwise pass vacuously).
func Compare(base, cur File, threshold float64) (geomean float64, regressed []string, err error) {
	var logSum float64
	n := 0
	for name, b := range base.Benches {
		c, ok := cur.Benches[name]
		if !ok || b.NsPerOp <= 0 || c.NsPerOp <= 0 {
			continue
		}
		ratio := c.NsPerOp / b.NsPerOp
		logSum += math.Log(ratio)
		n++
		if ratio > 1+threshold {
			regressed = append(regressed, fmt.Sprintf("%s: %.1fns -> %.1fns (%.2fx)", name, b.NsPerOp, c.NsPerOp, ratio))
		}
	}
	if n == 0 {
		return 0, nil, fmt.Errorf("no common benches between baseline and current run")
	}
	sort.Strings(regressed)
	return math.Exp(logSum / float64(n)), regressed, nil
}

// Gate runs Compare and turns the result into pass/fail: the gate fails
// when the geomean ratio exceeds 1+threshold. Individual regressions are
// reported but only the geomean gates, so one noisy micro-bench cannot
// fail CI by itself.
func Gate(base, cur File, threshold float64) error {
	geomean, regressed, err := Compare(base, cur, threshold)
	if err != nil {
		return err
	}
	for _, r := range regressed {
		fmt.Fprintf(os.Stderr, "benchgate: slower: %s\n", r)
	}
	if geomean > 1+threshold {
		return fmt.Errorf("geomean regression %.2fx exceeds the %.0f%% gate", geomean, threshold*100)
	}
	fmt.Fprintf(os.Stderr, "benchgate: geomean ratio %.3fx (gate at %.2fx), %d benches\n", geomean, 1+threshold, len(cur.Benches))
	return nil
}

// speedupPairs maps each flat-arena container bench to its map-backed
// reference bench; SpeedupVsRef aggregates over these.
var speedupPairs = [][2]string{
	{"refmap/hash/get", "container/hash/get"},
	{"refmap/hash/set", "container/hash/set"},
	{"refmap/hash2/get", "container/hash2/get"},
	{"refmap/hash2/set", "container/hash2/set"},
}

// SpeedupVsRef returns the geometric-mean Get/Set speedup of the
// flat-arena hash containers over the retained map-backed reference
// implementations, as recorded in f (reference ns / container ns).
func SpeedupVsRef(f File) (float64, error) {
	var logSum float64
	n := 0
	for _, p := range speedupPairs {
		ref, ok1 := f.Benches[p[0]]
		cur, ok2 := f.Benches[p[1]]
		if !ok1 || !ok2 || ref.NsPerOp <= 0 || cur.NsPerOp <= 0 {
			return 0, fmt.Errorf("bench pair %s/%s missing from file", p[0], p[1])
		}
		logSum += math.Log(ref.NsPerOp / cur.NsPerOp)
		n++
	}
	return math.Exp(logSum / float64(n)), nil
}

// enginePairs maps each interpreter dispatch bench to its threaded-tier
// twin; EngineSpeedups aggregates over these.
var enginePairs = [][2]string{
	{"dispatch/uaf", "dispatch/uaf/threaded"},
	{"dispatch/msan", "dispatch/msan/threaded"},
	{"dispatch/eraser", "dispatch/eraser/threaded"},
	{"dispatch/uaf/arith", "dispatch/uaf/arith/threaded"},
}

// EngineSpeedups returns the per-benchmark and geometric-mean dispatch
// speedup of the threaded tier over the interpreter, as recorded in f
// (interp ns / threaded ns). Benchmarks missing either leg are skipped;
// it errors only when no pair is present at all.
func EngineSpeedups(f File) (perBench map[string]float64, geomean float64, err error) {
	perBench = make(map[string]float64)
	var logSum float64
	n := 0
	for _, p := range enginePairs {
		interp, ok1 := f.Benches[p[0]]
		thr, ok2 := f.Benches[p[1]]
		if !ok1 || !ok2 || interp.NsPerOp <= 0 || thr.NsPerOp <= 0 {
			continue
		}
		s := interp.NsPerOp / thr.NsPerOp
		perBench[p[0]] = s
		logSum += math.Log(s)
		n++
	}
	if n == 0 {
		return nil, 0, fmt.Errorf("no engine bench pairs recorded")
	}
	return perBench, math.Exp(logSum / float64(n)), nil
}
