package perf

import (
	"path/filepath"
	"testing"
)

// TestSuiteSmoke runs every bench in smoke mode: fixture setup must
// succeed (containers, compiled analyses, instrumented machines) and
// every measurement must come back positive.
func TestSuiteSmoke(t *testing.T) {
	f := RunSuite(0)
	if len(f.Benches) < 20 {
		t.Fatalf("suite has %d benches, expected the full hot-path matrix", len(f.Benches))
	}
	for name, e := range f.Benches {
		if e.NsPerOp <= 0 {
			t.Errorf("%s: ns/op = %v, want > 0", name, e.NsPerOp)
		}
	}
	for _, p := range speedupPairs {
		for _, name := range p {
			if _, ok := f.Benches[name]; !ok {
				t.Errorf("speedup pair bench %s missing from suite", name)
			}
		}
	}
}

func synthFile(scale float64) File {
	f := File{Rev: "synth", Go: "go", Benches: map[string]Entry{}}
	for i, name := range []string{"a", "b", "c", "d"} {
		f.Benches[name] = Entry{NsPerOp: float64(10+i) * scale}
	}
	return f
}

// TestGateSelfTest is the deliberate-slowdown check from the issue: a
// uniform 2x slowdown must fail the 15% gate, an identical run must
// pass, and a uniform 2x speedup must pass.
func TestGateSelfTest(t *testing.T) {
	base := synthFile(1)
	if err := Gate(base, synthFile(2), GateThreshold); err == nil {
		t.Fatal("gate passed a 2x slowdown")
	}
	if err := Gate(base, synthFile(1), GateThreshold); err != nil {
		t.Fatalf("gate failed an identical run: %v", err)
	}
	if err := Gate(base, synthFile(0.5), GateThreshold); err != nil {
		t.Fatalf("gate failed a 2x speedup: %v", err)
	}
	// A single outlier bench must not fail the gate while the geomean
	// holds — and disjoint bench sets must error, not pass vacuously.
	outlier := synthFile(1)
	outlier.Benches["a"] = Entry{NsPerOp: outlier.Benches["a"].NsPerOp * 1.5}
	if err := Gate(base, outlier, GateThreshold); err != nil {
		t.Fatalf("gate failed on a single outlier with a passing geomean: %v", err)
	}
	if _, _, err := Compare(base, File{Benches: map[string]Entry{"zzz": {NsPerOp: 1}}}, GateThreshold); err == nil {
		t.Fatal("compare of disjoint bench sets did not error")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	want := synthFile(1)
	if err := WriteFile(path, want); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if got.Rev != want.Rev || len(got.Benches) != len(want.Benches) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, want)
	}
	for k, e := range want.Benches {
		if got.Benches[k] != e {
			t.Fatalf("bench %s: %v != %v", k, got.Benches[k], e)
		}
	}
}

// TestBaselineRecordsSpeedup pins the acceptance criterion: the
// checked-in baseline must record a >=1.3x geomean Get/Set speedup of
// the flat-arena hash containers over the map-backed references.
func TestBaselineRecordsSpeedup(t *testing.T) {
	f, err := ReadFile(filepath.Join("..", "..", "BENCH_baseline.json"))
	if err != nil {
		t.Fatalf("checked-in baseline unreadable: %v", err)
	}
	s, err := SpeedupVsRef(f)
	if err != nil {
		t.Fatalf("speedup: %v", err)
	}
	if s < 1.3 {
		t.Fatalf("recorded hash Get/Set speedup %.2fx, want >= 1.3x", s)
	}
	t.Logf("recorded flat-arena vs map-backed Get/Set geomean speedup: %.2fx", s)
}

// TestBaselineRecordsEngineSpeedup pins the execution-tier acceptance
// criterion: the checked-in baseline must record a >=2x threaded-tier
// win on at least one instrumented-quantum dispatch benchmark. The
// arith workload is the dispatch-bound one; the store/load-loop benches
// are hook-bound (one handler call per instruction) and sit near 1x by
// design — the tier removes dispatch cost, not handler cost.
func TestBaselineRecordsEngineSpeedup(t *testing.T) {
	f, err := ReadFile(filepath.Join("..", "..", "BENCH_baseline.json"))
	if err != nil {
		t.Fatalf("checked-in baseline unreadable: %v", err)
	}
	per, geo, err := EngineSpeedups(f)
	if err != nil {
		t.Fatalf("engine speedups: %v", err)
	}
	best := 0.0
	for _, s := range per {
		if s > best {
			best = s
		}
	}
	if best < 2.0 {
		t.Fatalf("best recorded threaded-tier dispatch speedup %.2fx, want >= 2x on at least one benchmark (all: %v)", best, per)
	}
	t.Logf("recorded threaded-tier speedups: %v (geomean %.2fx)", per, geo)
}
