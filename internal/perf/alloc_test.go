package perf

import (
	"testing"

	"repro/internal/analyses"
	"repro/internal/compiler"
	"repro/internal/instrument"
	"repro/internal/mir"
	"repro/internal/vm"
)

// quickstartUAFProgram is the quickstart workload shape — malloc a
// buffer, write it in a loop, free it, touch it again — with the write
// loop scaled up so the machine reaches a steady state with many
// scheduler quanta before the use-after-free at the end.
func quickstartUAFProgram() *mir.Program {
	p := mir.NewProgram()
	b := p.NewFunc("main", 0)
	buf := b.Call("malloc", mir.C(64))
	b.Loop(mir.C(1<<16), func(i mir.Reg) {
		idx := b.Bin(mir.OpAnd, mir.R(i), mir.C(7))
		off := b.Mul(mir.R(idx), mir.C(8))
		addr := b.Add(mir.R(buf), mir.R(off))
		b.Store(mir.R(addr), mir.R(i), 8)
		b.Load(mir.R(addr), 8)
	})
	b.CallVoid("free", mir.R(buf))
	b.Store(mir.R(buf), mir.C(99), 8) // the bug
	b.RetVal(mir.C(0))
	return p
}

// TestQuantumAllocFree asserts a full instrumented vm.Machine quantum —
// interpreter dispatch, hook argument marshalling and the compiled UAF
// handler bodies — allocates nothing once warm. This is the end-to-end
// version of the per-container guarantees in internal/meta.
func TestQuantumAllocFree(t *testing.T) {
	a, err := analyses.Compile("uaf", compiler.DefaultOptions())
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	inst, err := instrument.Apply(quickstartUAFProgram(), a)
	if err != nil {
		t.Fatalf("instrument: %v", err)
	}
	rt, err := a.NewRuntime()
	if err != nil {
		t.Fatalf("runtime: %v", err)
	}
	m, err := vm.New(inst, vm.Config{TrackShadow: a.NeedShadow})
	if err != nil {
		t.Fatalf("vm: %v", err)
	}
	m.Handlers = rt.Handlers()
	if err := m.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	// Warm up: materialize container entries, memory chunks and pools.
	for i := 0; i < 64; i++ {
		if !m.RunQuantum() {
			t.Fatal("workload finished during warmup")
		}
	}
	if avg := testing.AllocsPerRun(100, func() {
		if !m.RunQuantum() {
			t.Fatal("workload finished during measurement")
		}
	}); avg != 0 {
		t.Fatalf("%v allocs per instrumented quantum, want 0", avg)
	}
	// Drain to completion: the run must still find the planted UAF.
	for m.RunQuantum() {
	}
	res, err := m.Finish()
	if err != nil {
		t.Fatalf("finish: %v", err)
	}
	if len(res.Reports) == 0 {
		t.Fatal("instrumented run lost the use-after-free finding")
	}
}
