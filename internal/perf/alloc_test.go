package perf

import (
	"io"
	"testing"

	"repro/internal/analyses"
	"repro/internal/compiler"
	"repro/internal/instrument"
	"repro/internal/mir"
	"repro/internal/obs"
	"repro/internal/vm"
)

// quickstartUAFProgram is the quickstart workload shape — malloc a
// buffer, write it in a loop, free it, touch it again — with the write
// loop scaled up so the machine reaches a steady state with many
// scheduler quanta before the use-after-free at the end.
func quickstartUAFProgram() *mir.Program {
	p := mir.NewProgram()
	b := p.NewFunc("main", 0)
	buf := b.Call("malloc", mir.C(64))
	b.Loop(mir.C(1<<16), func(i mir.Reg) {
		idx := b.Bin(mir.OpAnd, mir.R(i), mir.C(7))
		off := b.Mul(mir.R(idx), mir.C(8))
		addr := b.Add(mir.R(buf), mir.R(off))
		b.Store(mir.R(addr), mir.R(i), 8)
		b.Load(mir.R(addr), 8)
	})
	b.CallVoid("free", mir.R(buf))
	b.Store(mir.R(buf), mir.C(99), 8) // the bug
	b.RetVal(mir.C(0))
	return p
}

// startUAFMachine compiles the UAF analysis, instruments the quickstart
// workload, starts a machine with the given extra config, and warms it
// up so steady-state quanta can be measured.
func startUAFMachine(t *testing.T, tweak func(*vm.Config)) *vm.Machine {
	t.Helper()
	a, err := analyses.Compile("uaf", compiler.DefaultOptions())
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	inst, err := instrument.Apply(quickstartUAFProgram(), a)
	if err != nil {
		t.Fatalf("instrument: %v", err)
	}
	rt, err := a.NewRuntime()
	if err != nil {
		t.Fatalf("runtime: %v", err)
	}
	cfg := vm.Config{TrackShadow: a.NeedShadow}
	if tweak != nil {
		tweak(&cfg)
	}
	m, err := vm.New(inst, cfg)
	if err != nil {
		t.Fatalf("vm: %v", err)
	}
	m.Handlers = rt.Handlers()
	if err := m.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	// Warm up: materialize container entries, memory chunks and pools.
	for i := 0; i < 64; i++ {
		if !m.RunQuantum() {
			t.Fatal("workload finished during warmup")
		}
	}
	return m
}

// TestQuantumAllocFree asserts a full instrumented vm.Machine quantum —
// dispatch, hook argument marshalling and the compiled UAF handler
// bodies — allocates nothing once warm, in both execution tiers: the
// interpreter's switch loop and the closure-threaded tier's fused runs
// and superinstruction chains (which pre-bind everything at Start and
// must not allocate per quantum either). This is the end-to-end version
// of the per-container guarantees in internal/meta, and it is also the
// observability-disabled proof: the opcode, per-hook and scheduler
// counters are unconditional plain fields that increment on this path,
// so "compiled in but switched off" costs zero allocations.
func TestQuantumAllocFree(t *testing.T) {
	for _, eng := range []vm.Engine{vm.EngineInterp, vm.EngineThreaded} {
		t.Run(eng.String(), func(t *testing.T) {
			m := startUAFMachine(t, func(c *vm.Config) { c.Engine = eng })
			if avg := testing.AllocsPerRun(100, func() {
				if !m.RunQuantum() {
					t.Fatal("workload finished during measurement")
				}
			}); avg != 0 {
				t.Fatalf("%v allocs per instrumented quantum, want 0", avg)
			}
			// Drain to completion: the run must still find the planted UAF.
			for m.RunQuantum() {
			}
			res, err := m.Finish()
			if err != nil {
				t.Fatalf("finish: %v", err)
			}
			if len(res.Reports) == 0 {
				t.Fatal("instrumented run lost the use-after-free finding")
			}
		})
	}
}

// TestQuantumAllocObservabilityEnabled bounds the other side of the
// bargain: with the volatile collectors on — per-hook wall timing and a
// live Chrome-trace sink — a quantum may allocate, but only O(1): the
// span's kv slice and number formatting, independent of how many
// instructions or hook dispatches the quantum retires. The trace line
// itself is built in a reused buffer under the Trace lock.
func TestQuantumAllocObservabilityEnabled(t *testing.T) {
	for _, eng := range []vm.Engine{vm.EngineInterp, vm.EngineThreaded} {
		t.Run(eng.String(), func(t *testing.T) {
			trace := obs.NewTrace(io.Discard)
			defer trace.Close()
			m := startUAFMachine(t, func(c *vm.Config) {
				c.TimeHooks = true
				c.Trace = trace
				c.Engine = eng
			})
			avg := testing.AllocsPerRun(100, func() {
				if !m.RunQuantum() {
					t.Fatal("workload finished during measurement")
				}
			})
			if avg > 8 {
				t.Fatalf("%v allocs per quantum with observability enabled, want O(1) (<= 8)", avg)
			}
		})
	}
}
