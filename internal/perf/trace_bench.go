package perf

import (
	"bytes"
	"fmt"
	"io"

	"repro/internal/analyses"
	"repro/internal/compiler"
	"repro/internal/instrument"
	"repro/internal/mir"
	"repro/internal/trace"
	"repro/internal/vm"
)

// traceProgram is the bounded twin of the dispatch access loop: finite,
// so one full record or replay run is one benchmark operation. 4096
// iterations keeps a run in the hundreds of microseconds — long enough
// that per-event trace cost dominates machine setup.
func traceProgram() *mir.Program {
	p := mir.NewProgram()
	b := p.NewFunc("main", 0)
	buf := b.Call("malloc", mir.C(512))
	b.Loop(mir.C(1<<12), func(i mir.Reg) {
		idx := b.Bin(mir.OpAnd, mir.R(i), mir.C(63))
		off := b.Mul(mir.R(idx), mir.C(8))
		addr := b.Add(mir.R(buf), mir.R(off))
		b.Store(mir.R(addr), mir.R(i), 8)
		b.Load(mir.R(addr), 8)
	})
	b.RetVal(mir.C(0))
	return p
}

// recordTraceBytes records traceProgram's plain run once for the
// decode and replay fixtures.
func recordTraceBytes(p *mir.Program) []byte {
	var buf bytes.Buffer
	m, err := vm.New(p, vm.Config{TraceSink: &buf, MaxSteps: 1 << 30})
	if err != nil {
		panic(fmt.Sprintf("perf: trace fixture vm: %v", err))
	}
	if _, err := m.Run(); err != nil {
		panic(fmt.Sprintf("perf: trace fixture run: %v", err))
	}
	return buf.Bytes()
}

// traceBenches measures the record/replay tier end to end: recording a
// plain run to a discarded sink, decoding the compressed stream, and
// replaying it into a uaf-instrumented clone (hooks dispatch live, the
// environment comes from the trace). Each op is one full run.
func traceBenches() []Bench {
	return []Bench{
		{"trace/record", func() func(int) {
			p := traceProgram()
			return func(n int) {
				for i := 0; i < n; i++ {
					m, err := vm.New(p, vm.Config{TraceSink: io.Discard, MaxSteps: 1 << 30})
					if err != nil {
						panic(fmt.Sprintf("perf: trace/record vm: %v", err))
					}
					if _, err := m.Run(); err != nil {
						panic(fmt.Sprintf("perf: trace/record run: %v", err))
					}
				}
			}
		}},
		{"trace/decode", func() func(int) {
			data := recordTraceBytes(traceProgram())
			return func(n int) {
				for i := 0; i < n; i++ {
					if _, err := trace.Decode(data); err != nil {
						panic(fmt.Sprintf("perf: trace/decode: %v", err))
					}
				}
			}
		}},
		{"trace/replay/uaf", func() func(int) {
			p := traceProgram()
			tr, err := trace.Decode(recordTraceBytes(p))
			if err != nil {
				panic(fmt.Sprintf("perf: trace/replay decode: %v", err))
			}
			a, err := analyses.Compile("uaf", compiler.DefaultOptions())
			if err != nil {
				panic(fmt.Sprintf("perf: trace/replay compile: %v", err))
			}
			analyses.RegisterExternals(a)
			inst, err := instrument.Apply(p, a)
			if err != nil {
				panic(fmt.Sprintf("perf: trace/replay instrument: %v", err))
			}
			return func(n int) {
				for i := 0; i < n; i++ {
					rt, err := a.NewRuntime()
					if err != nil {
						panic(fmt.Sprintf("perf: trace/replay runtime: %v", err))
					}
					m, err := vm.New(inst, vm.Config{Replay: tr, TrackShadow: a.NeedShadow, MaxSteps: 1 << 30})
					if err != nil {
						panic(fmt.Sprintf("perf: trace/replay vm: %v", err))
					}
					m.Handlers = rt.Handlers()
					if _, err := m.Run(); err != nil {
						panic(fmt.Sprintf("perf: trace/replay run: %v", err))
					}
				}
			}
		}},
	}
}
