package perf

import (
	"fmt"

	"repro/internal/analyses"
	"repro/internal/compiler"
)

// adaptProfile synthesizes the profile shape the adaptive loop's
// showcase workloads produce: msan's shadow map dominates while the
// allocation-size sidecar sits far below the cold threshold, so
// AdaptOptions performs a real cold split and the recompile bench
// measures a layout that actually changed.
func adaptProfile() *compiler.Profile {
	return &compiler.Profile{Counts: map[string]uint64{
		"addr2label": 1 << 20,
		"addr2size":  100,
	}}
}

// adaptBenches measures both halves of a hot swap: the pure
// profile-to-decision pass (AdaptOptions) and the profile-carrying
// recompile it triggers. Together they are the swap cost a profiling
// quantum must amortize, for the harness's -adapt mode and the
// server's -adapt-after loop alike.
func adaptBenches() []Bench {
	return []Bench{
		{"adapt/decide", func() func(int) {
			base := compiler.DefaultOptions()
			prof := adaptProfile()
			if !base.AdaptOptions(prof).Changed {
				panic("perf: adapt profile induces no cold split")
			}
			return func(n int) {
				for i := 0; i < n; i++ {
					if !base.AdaptOptions(prof).Changed {
						panic("perf: adaptation flipped mid-bench")
					}
				}
			}
		}},
		{"adapt/recompile", func() func(int) {
			ares := compiler.DefaultOptions().AdaptOptions(adaptProfile())
			if !ares.Changed {
				panic("perf: adapt profile induces no cold split")
			}
			src, err := analyses.Source("msan")
			if err != nil {
				panic(fmt.Sprintf("perf: msan source: %v", err))
			}
			return func(n int) {
				// Uncached on purpose: the hot swap's recompile goes through
				// CachedCompile in production, but its cost on a miss — the
				// first adaptation for a fingerprint — is the number that
				// decides whether a quantum amortizes.
				for i := 0; i < n; i++ {
					if _, err := compiler.Compile(src, ares.Opts); err != nil {
						panic(fmt.Sprintf("perf: adapted recompile: %v", err))
					}
				}
			}
		}},
	}
}
