package perf

// Map-backed reference containers: the pre-flat-arena HashMap/HashMap2
// (a Go map of per-entry slices), retained verbatim so the benchmark
// suite keeps measuring the open-addressing tables against the design
// they replaced. Not used by the runtime.

type mapHashMap struct {
	m        map[uint64][]uint64
	ew       int
	template []uint64
}

func newMapHashMap(entryWords int, template []uint64) *mapHashMap {
	return &mapHashMap{m: make(map[uint64][]uint64), ew: entryWords, template: template}
}

func (m *mapHashMap) Entry(key uint64) []uint64 {
	e, ok := m.m[key]
	if !ok {
		e = make([]uint64, m.ew)
		if m.template != nil {
			copy(e, m.template)
		}
		m.m[key] = e
	}
	return e
}

func (m *mapHashMap) Peek(key uint64) []uint64 { return m.m[key] }

func (m *mapHashMap) ForEach(fn func(key uint64, entry []uint64)) {
	for k, e := range m.m {
		fn(k, e)
	}
}

type mapHashMap2 struct {
	m        map[[2]uint64][]uint64
	ew       int
	template []uint64
}

func newMapHashMap2(entryWords int, template []uint64) *mapHashMap2 {
	return &mapHashMap2{m: make(map[[2]uint64][]uint64), ew: entryWords, template: template}
}

func (m *mapHashMap2) Entry(k1, k2 uint64) []uint64 {
	k := [2]uint64{k1, k2}
	e, ok := m.m[k]
	if !ok {
		e = make([]uint64, m.ew)
		if m.template != nil {
			copy(e, m.template)
		}
		m.m[k] = e
	}
	return e
}

func (m *mapHashMap2) Peek(k1, k2 uint64) []uint64 { return m.m[[2]uint64{k1, k2}] }
