package compiler

import (
	"fmt"

	"repro/internal/lang/ast"
	"repro/internal/lang/sema"
	"repro/internal/lang/token"
	"repro/internal/meta"
	"repro/internal/vm"
)

// Handler bodies compile to closure trees at Runtime construction time.
// Every closure shares one mutable hstate per handler (the VM is
// single-goroutine and handlers never nest), so dispatch allocates
// nothing on the hot path.
//
// Metadata lookup minimization (§3.2.3, §5.4) happens at two levels:
//
//   - entry CSE: pure (group, key-class) pairs share a cached entry
//     slice per invocation;
//   - value CSE: pure scalar field reads share a cached value, kept
//     coherent by write-through on assignment and invalidation of the
//     member's other cache slots (two key classes may alias the same
//     address at runtime).
//
// Caches validate against a per-invocation epoch, so handler entry costs
// one increment instead of clearing slot arrays.

type hstate struct {
	m        *vm.Machine
	tid      uint64
	args     []uint64
	ret      uint64
	returned bool

	epoch   uint64
	entries [][]uint64
	evalid  []uint64 // epoch stamps for entries
	egen    []uint64 // container rehash generations for hash-backed entries
	vcache  []uint64
	vvalid  []uint64 // epoch stamps for scalar values
}

type (
	evalFn  func(st *hstate) uint64
	stmtFn  func(st *hstate)
	entryFn func(st *hstate) []uint64
	offFn   func(st *hstate) uint
)

// setRef is a set rvalue: a bit-vector view or a tree. owned marks
// freshly computed results that assignment may take without cloning.
type setRef struct {
	bits  []uint64
	tree  *meta.TreeSet
	owned bool
}

type setFn func(st *hstate) setRef

// loc is a compiled metadata location: how to fetch the entry and where
// the field sits.
type loc struct {
	mem      *Member
	ef       entryFn
	constOff uint
	dynOff   offFn  // nil ⇒ constant offset
	class    string // entry key class, "" if impure (no caching)
}

type hcompiler struct {
	rt       *Runtime
	a        *Analysis
	h        *sema.Handler
	paramIdx map[string]int
	// paramClass names each parameter by its *argument position* in the
	// hook's arg list ("p#3"), so fused handlers whose different bodies
	// receive the same argument under different parameter names share
	// CSE slots.
	paramClass map[string]string

	useCSE bool
	slots  map[string]int // entry cache slots
	vslots map[string]int // value cache slots
	// memberVSlots lists the value slots belonging to each metadata
	// member, for aliasing invalidation on writes. Invalidator closures
	// hold the *slotList so slots added by later statements are seen.
	memberVSlots map[string]*slotList
	uniq         int

	syncGroups map[int]bool
}

func (rt *Runtime) buildHandlers() error {
	a := rt.A
	rt.handlers = make([]vm.HandlerFn, len(a.Info.HandlerOrder)+len(a.Fused))
	for i, h := range a.Info.HandlerOrder {
		fn, err := rt.buildHandler(h)
		if err != nil {
			return fmt.Errorf("compiler: handler %s: %w", h.Name, err)
		}
		rt.handlers[i] = fn
	}
	for i := range a.Fused {
		fn, err := rt.buildFusedHandler(&a.Fused[i])
		if err != nil {
			return fmt.Errorf("compiler: %s: %w", a.Fused[i].Name, err)
		}
		rt.handlers[len(a.Info.HandlerOrder)+i] = fn
	}
	return nil
}

func newHCompiler(rt *Runtime) *hcompiler {
	return &hcompiler{
		rt:           rt,
		a:            rt.A,
		paramIdx:     make(map[string]int),
		paramClass:   make(map[string]string),
		useCSE:       rt.A.Opts.CSE,
		slots:        make(map[string]int),
		vslots:       make(map[string]int),
		memberVSlots: make(map[string]*slotList),
		syncGroups:   make(map[int]bool),
	}
}

// bindParams points the compiler's parameter tables at one handler's
// parameters, mapped onto absolute hook-argument positions.
func (hc *hcompiler) bindParams(h *sema.Handler, argIdx []int) {
	hc.h = h
	hc.paramIdx = make(map[string]int, len(h.Decl.Params))
	hc.paramClass = make(map[string]string, len(h.Decl.Params))
	for i, p := range h.Decl.Params {
		pos := i
		if argIdx != nil {
			pos = argIdx[i]
		}
		hc.paramIdx[p.Name] = pos
		hc.paramClass[p.Name] = fmt.Sprintf("p#%d", pos)
	}
}

func (rt *Runtime) buildHandler(h *sema.Handler) (vm.HandlerFn, error) {
	hc := newHCompiler(rt)
	hc.bindParams(h, nil)

	body, err := hc.stmts(h.Decl.Body)
	if err != nil {
		return nil, err
	}

	syncMus := hc.sortedSyncGroups()

	st := &hstate{
		entries: make([][]uint64, len(hc.slots)),
		evalid:  make([]uint64, len(hc.slots)),
		egen:    make([]uint64, len(hc.slots)),
		vcache:  make([]uint64, len(hc.vslots)),
		vvalid:  make([]uint64, len(hc.vslots)),
	}

	switch {
	case len(syncMus) == 0:
		return func(m *vm.Machine, tid uint64, args []uint64) uint64 {
			st.m, st.tid, st.args = m, tid, args
			st.ret, st.returned = 0, false
			st.epoch++
			for _, s := range body {
				s(st)
				if st.returned {
					break
				}
			}
			return st.ret
		}, nil
	case len(syncMus) == 1:
		mu := &syncMus[0].mu
		return func(m *vm.Machine, tid uint64, args []uint64) uint64 {
			st.m, st.tid, st.args = m, tid, args
			st.ret, st.returned = 0, false
			st.epoch++
			mu.Lock()
			for _, s := range body {
				s(st)
				if st.returned {
					break
				}
			}
			mu.Unlock()
			return st.ret
		}, nil
	default:
		return func(m *vm.Machine, tid uint64, args []uint64) uint64 {
			st.m, st.tid, st.args = m, tid, args
			st.ret, st.returned = 0, false
			st.epoch++
			for _, gs := range syncMus {
				gs.mu.Lock()
			}
			for _, s := range body {
				s(st)
				if st.returned {
					break
				}
			}
			for i := len(syncMus) - 1; i >= 0; i-- {
				syncMus[i].mu.Unlock()
			}
			return st.ret
		}, nil
	}
}

// sortedSyncGroups returns the sync groups the compiled code touches,
// mutexes ordered by group id (a canonical lock order).
func (hc *hcompiler) sortedSyncGroups() []*groupState {
	var syncMus []*groupState
	for gid := range hc.syncGroups {
		syncMus = append(syncMus, hc.rt.groups[gid])
	}
	for i := 0; i < len(syncMus); i++ { // insertion sort (tiny n)
		for j := i; j > 0 && syncMus[j-1].g.ID > syncMus[j].g.ID; j-- {
			syncMus[j-1], syncMus[j] = syncMus[j], syncMus[j-1]
		}
	}
	return syncMus
}

// buildFusedHandler compiles several handlers' bodies into one closure
// sharing a single hstate: the entry/value CSE slots span analyses, and
// the union of sync groups is locked once around all bodies. A `return`
// inside one body ends that body only.
func (rt *Runtime) buildFusedHandler(spec *FusedSpec) (vm.HandlerFn, error) {
	hc := newHCompiler(rt)
	bodies := make([][]stmtFn, 0, len(spec.Parts))
	for _, part := range spec.Parts {
		h := rt.A.Info.Handlers[part.HandlerName]
		if h == nil {
			return nil, fmt.Errorf("fused part %s not found", part.HandlerName)
		}
		hc.bindParams(h, part.ArgIdx)
		body, err := hc.stmts(h.Decl.Body)
		if err != nil {
			return nil, fmt.Errorf("part %s: %w", part.HandlerName, err)
		}
		bodies = append(bodies, body)
	}
	syncMus := hc.sortedSyncGroups()
	st := &hstate{
		entries: make([][]uint64, len(hc.slots)),
		evalid:  make([]uint64, len(hc.slots)),
		egen:    make([]uint64, len(hc.slots)),
		vcache:  make([]uint64, len(hc.vslots)),
		vvalid:  make([]uint64, len(hc.vslots)),
	}
	return func(m *vm.Machine, tid uint64, args []uint64) uint64 {
		st.m, st.tid, st.args = m, tid, args
		st.ret = 0
		st.epoch++
		for _, gs := range syncMus {
			gs.mu.Lock()
		}
		for _, body := range bodies {
			st.returned = false
			for _, s := range body {
				s(st)
				if st.returned {
					break
				}
			}
		}
		for i := len(syncMus) - 1; i >= 0; i-- {
			syncMus[i].mu.Unlock()
		}
		return 0
	}, nil
}

// ---------------------------------------------------------------------------
// Statements

func (hc *hcompiler) stmts(list []ast.Stmt) ([]stmtFn, error) {
	out := make([]stmtFn, 0, len(list))
	for _, s := range list {
		fn, err := hc.stmt(s)
		if err != nil {
			return nil, err
		}
		out = append(out, fn)
	}
	return out, nil
}

func (hc *hcompiler) stmt(s ast.Stmt) (stmtFn, error) {
	switch st := s.(type) {
	case *ast.IfStmt:
		cond, err := hc.scalar(st.Cond)
		if err != nil {
			return nil, err
		}
		thenB, err := hc.stmts(st.Then)
		if err != nil {
			return nil, err
		}
		elseB, err := hc.stmts(st.Else)
		if err != nil {
			return nil, err
		}
		if len(elseB) == 0 {
			return func(h *hstate) {
				if cond(h) != 0 {
					for _, fn := range thenB {
						fn(h)
						if h.returned {
							return
						}
					}
				}
			}, nil
		}
		return func(h *hstate) {
			branch := elseB
			if cond(h) != 0 {
				branch = thenB
			}
			for _, fn := range branch {
				fn(h)
				if h.returned {
					return
				}
			}
		}, nil

	case *ast.ReturnStmt:
		if st.Value == nil {
			return func(h *hstate) { h.returned = true }, nil
		}
		val, err := hc.scalar(st.Value)
		if err != nil {
			return nil, err
		}
		return func(h *hstate) {
			h.ret = val(h)
			h.returned = true
		}, nil

	case *ast.ExprStmt:
		return hc.effect(st.X)
	}
	return nil, fmt.Errorf("unsupported statement %T", s)
}

// effect compiles an expression evaluated for side effect.
func (hc *hcompiler) effect(e ast.Expr) (stmtFn, error) {
	if as, ok := e.(*ast.AssignExpr); ok {
		return hc.assign(as)
	}
	vt := hc.a.Info.ExprTypes[e]
	if vt.Kind == sema.KSet {
		fn, err := hc.set(e)
		if err != nil {
			return nil, err
		}
		return func(h *hstate) { fn(h) }, nil
	}
	fn, err := hc.scalar(e)
	if err != nil {
		return nil, err
	}
	return func(h *hstate) { fn(h) }, nil
}

func (hc *hcompiler) assign(as *ast.AssignExpr) (stmtFn, error) {
	lt := hc.a.Info.ExprTypes[as.LHS]
	if lt.Meta == nil {
		return nil, fmt.Errorf("assignment target is not metadata")
	}
	l, err := hc.location(as.LHS)
	if err != nil {
		return nil, err
	}

	if lt.Kind == sema.KScalar {
		rhs, err := hc.scalar(as.RHS)
		if err != nil {
			return nil, err
		}
		return hc.storeScalar(l, rhs)
	}

	// Set assignment. Peephole: `m[k] = m[k] OP other` compiles to an
	// in-place bit-vector update — the dominant lockset-refinement
	// pattern (Eraser's `addr2Lock[addr] = addr2Lock[addr] &
	// thread2Lock[t]`) — skipping the scratch buffer and copy-back.
	if bin, ok := as.RHS.(*ast.BinaryExpr); ok &&
		(bin.Op == token.AND || bin.Op == token.OR) &&
		l.mem.Repr == SetBitVec && l.class != "" && l.dynOff == nil {
		if xl, err2 := hc.setOperandLoc(bin.X); err2 == nil &&
			xl.mem == l.mem && xl.class == l.class && xl.dynOff == nil && xl.constOff == l.constOff {
			other, err := hc.set(bin.Y)
			if err != nil {
				return nil, err
			}
			ef := l.ef
			w := int(l.constOff / 64)
			words := l.mem.SetWords
			// Evaluate the RHS operand before fetching the destination
			// view: the inline-arena hash tables may rehash while
			// materializing `other`, which would detach an
			// already-fetched destination and lose the write. A stale
			// *source* view is harmless — rehash copies values.
			if bin.Op == token.AND {
				return func(h *hstate) {
					r := other(h)
					entry := ef(h)
					dst := entry[w : w+words]
					meta.BitAnd(dst, dst, r.bits)
				}, nil
			}
			return func(h *hstate) {
				r := other(h)
				entry := ef(h)
				dst := entry[w : w+words]
				meta.BitOr(dst, dst, r.bits)
			}, nil
		}
	}

	rhs, err := hc.set(as.RHS)
	if err != nil {
		return nil, err
	}
	rt := hc.rt
	mem := l.mem
	switch mem.Repr {
	case SetBitVec:
		words := mem.SetWords
		off := hc.offsetFn(l)
		// Destination view fetched last: evaluating the offset or RHS
		// may grow a hash container and detach an earlier view.
		return func(h *hstate) {
			w := int(off(h) / 64)
			r := rhs(h)
			entry := l.ef(h)
			meta.BitCopy(entry[w:w+words], r.bits)
		}, nil
	default: // SetTree
		off := hc.offsetFn(l)
		return func(h *hstate) {
			w := int(off(h) / 64)
			r := rhs(h)
			t := r.tree
			if !r.owned {
				t = t.Clone()
			}
			entry := l.ef(h)
			if handle := entry[w]; handle != 0 {
				rt.trees[handle-1] = t
			} else {
				entry[w] = rt.newTree(t)
			}
		}, nil
	}
}

// withProfileCounter wraps an entry fetch with a per-member access
// counter when the analysis was compiled with ProfileCollect.
func (hc *hcompiler) withProfileCounter(mem *Member, ef entryFn) entryFn {
	if !hc.a.Opts.ProfileCollect {
		return ef
	}
	idx, ok := hc.a.memberCounterIdx[mem.Meta.Name]
	if !ok {
		return ef
	}
	counts := hc.rt.memberCounts
	return func(h *hstate) []uint64 {
		counts[idx]++
		return ef(h)
	}
}

// profileTick returns a statement-level counter for operations that
// bypass entry fetches (range fills/reads), or nil.
func (hc *hcompiler) profileTick(mem *Member) func() {
	if !hc.a.Opts.ProfileCollect {
		return nil
	}
	idx, ok := hc.a.memberCounterIdx[mem.Meta.Name]
	if !ok {
		return nil
	}
	counts := hc.rt.memberCounts
	return func() { counts[idx]++ }
}

// setOperandLoc resolves a set expression to its storage location if it
// is a direct member view (Ident/IndexExpr); used by the in-place
// peephole to recognize self-updates.
func (hc *hcompiler) setOperandLoc(e ast.Expr) (loc, error) {
	switch e.(type) {
	case *ast.Ident, *ast.IndexExpr:
		return hc.location(e)
	}
	return loc{}, fmt.Errorf("not a member view")
}

// offsetFn converts a loc's offset to a uniform closure (cheap constant
// variant when possible).
func (hc *hcompiler) offsetFn(l loc) offFn {
	if l.dynOff != nil {
		return l.dynOff
	}
	off := l.constOff
	return func(h *hstate) uint { return off }
}

// ---------------------------------------------------------------------------
// Locations

// location compiles a metadata access (Ident for globals, IndexExpr
// chains for maps) into a loc.
func (hc *hcompiler) location(e ast.Expr) (loc, error) {
	vt := hc.a.Info.ExprTypes[e]
	if vt.Meta == nil {
		return loc{}, fmt.Errorf("expression is not a metadata access")
	}
	mem := hc.a.Layout.ByMeta[vt.Meta.Name]

	var keys []ast.Expr
	cur := e
	for {
		ix, ok := cur.(*ast.IndexExpr)
		if !ok {
			break
		}
		keys = append([]ast.Expr{ix.Index}, keys...)
		cur = ix.X
	}
	return hc.memberLocation(mem, keys)
}

// memberLocation builds a loc for a member given its key expressions.
func (hc *hcompiler) memberLocation(mem *Member, keys []ast.Expr) (loc, error) {
	g := hc.a.Layout.Groups[mem.GroupID]
	gs := hc.rt.groups[mem.GroupID]
	if g.Sync {
		hc.syncGroups[g.ID] = true
	}

	if g.Impl == ImplGlobal {
		return loc{
			mem:      mem,
			ef:       hc.withProfileCounter(mem, func(h *hstate) []uint64 { return gs.global }),
			constOff: mem.BitOff,
			class:    fmt.Sprintf("g%d", g.ID),
		}, nil
	}

	if len(keys) == 0 {
		return loc{}, fmt.Errorf("map %s accessed without keys", mem.Meta.Name)
	}

	keyEval, err := hc.keyValue(keys[0], g.KeyType, g.AddrShift)
	if err != nil {
		return loc{}, err
	}

	var innerEvals []evalFn
	var key2Eval evalFn
	for i, kt := range mem.Meta.Keys[1:] {
		if i+1 >= len(keys) {
			return loc{}, fmt.Errorf("map %s: missing key %d", mem.Meta.Name, i+2)
		}
		ev, err := hc.keyValue(keys[i+1], kt, 0)
		if err != nil {
			return loc{}, err
		}
		if kt.Domain > 0 {
			innerEvals = append(innerEvals, ev)
		} else {
			key2Eval = ev
		}
	}

	var ef entryFn
	switch g.Impl {
	case ImplHash2:
		c2 := gs.c2
		ef = func(h *hstate) []uint64 { return c2.Entry(keyEval(h), key2Eval(h)) }
	default:
		c := gs.c
		ef = func(h *hstate) []uint64 { return c.Entry(keyEval(h)) }
	}

	class := ""
	if hc.useCSE {
		class = hc.entryClass(g, keys)
		if class != "" {
			slot, ok := hc.slots[class]
			if !ok {
				slot = len(hc.slots)
				hc.slots[class] = slot
			}
			inner := ef
			// The flat-arena hash tables rehash on growth and on
			// back-shifting removal, detaching previously returned entry
			// views from the live arena; their cache slots validate the
			// container generation as well as the invocation epoch. The
			// other containers never move a materialized entry.
			switch g.Impl {
			case ImplHash:
				hm := gs.c.(*meta.HashMap)
				ef = func(h *hstate) []uint64 {
					if h.evalid[slot] == h.epoch && h.egen[slot] == hm.Gen() {
						return h.entries[slot]
					}
					e := inner(h)
					h.entries[slot] = e
					h.evalid[slot] = h.epoch
					h.egen[slot] = hm.Gen()
					return e
				}
			case ImplHash2:
				hm2 := gs.c2
				ef = func(h *hstate) []uint64 {
					if h.evalid[slot] == h.epoch && h.egen[slot] == hm2.Gen() {
						return h.entries[slot]
					}
					e := inner(h)
					h.entries[slot] = e
					h.evalid[slot] = h.epoch
					h.egen[slot] = hm2.Gen()
					return e
				}
			default:
				ef = func(h *hstate) []uint64 {
					if h.evalid[slot] == h.epoch {
						return h.entries[slot]
					}
					e := inner(h)
					h.entries[slot] = e
					h.evalid[slot] = h.epoch
					return e
				}
			}
		}
	}

	ef = hc.withProfileCounter(mem, ef)

	l := loc{mem: mem, ef: ef, constOff: mem.BitOff, class: class}
	if len(innerEvals) > 0 {
		base := mem.BitOff
		doms := mem.InnerDomains
		strides := mem.InnerStride
		evals := innerEvals
		l.dynOff = func(h *hstate) uint {
			off := base
			for i, ev := range evals {
				idx := ev(h) % uint64(doms[i])
				off += uint(idx) * strides[i]
			}
			return off
		}
		// Dynamic offsets disable value caching (the offset is part of
		// the location identity).
		l.class = ""
	}
	return l, nil
}

// classify canonicalizes a key expression the way access.Classify does,
// but names parameters by hook-argument position so fused handlers
// share classes across bodies. Impure expressions get a unique "!" id.
func (hc *hcompiler) classify(e ast.Expr) string {
	unique := func() string {
		hc.uniq++
		return fmt.Sprintf("!%d", hc.uniq)
	}
	switch x := e.(type) {
	case *ast.Ident:
		if v, ok := hc.a.Info.Consts[x.Name]; ok {
			return fmt.Sprintf("c%d", v)
		}
		if cls, ok := hc.paramClass[x.Name]; ok {
			return cls
		}
		return unique() // metadata reads are treated as impure keys
	case *ast.IntLit:
		return fmt.Sprintf("c%d", x.Value)
	case *ast.UnaryExpr:
		inner := hc.classify(x.X)
		if inner[0] == '!' {
			return inner
		}
		return x.Op.String() + inner
	case *ast.BinaryExpr:
		l, r := hc.classify(x.X), hc.classify(x.Y)
		if l[0] == '!' || r[0] == '!' {
			return unique()
		}
		return "(" + l + x.Op.String() + r + ")"
	case *ast.CallExpr:
		if x.Name == sema.BuiltinPtrOffset && len(x.Args) == 2 {
			l, r := hc.classify(x.Args[0]), hc.classify(x.Args[1])
			if l[0] != '!' && r[0] != '!' {
				return "(" + l + "+" + r + ")"
			}
		}
		return unique()
	}
	return unique()
}

// entryClass builds the entry CSE cache key. Returns "" when any
// entry-selecting key is impure.
func (hc *hcompiler) entryClass(g *Group, keys []ast.Expr) string {
	out := fmt.Sprintf("g%d", g.ID)
	c0 := hc.classify(keys[0])
	if c0[0] == '!' {
		return ""
	}
	out += "|" + c0
	if g.Impl == ImplHash2 {
		mem := g.Members[0]
		for i, kt := range mem.Meta.Keys[1:] {
			if kt.Domain <= 0 && i+1 < len(keys) {
				ck := hc.classify(keys[i+1])
				if ck[0] == '!' {
					return ""
				}
				out += "|" + ck
			}
		}
	}
	return out
}

// keyValue compiles a key expression with address shifting and lock-id
// interning applied per the key's declared type.
func (hc *hcompiler) keyValue(e ast.Expr, kt *sema.Type, addrShift uint) (evalFn, error) {
	ev, err := hc.scalar(e)
	if err != nil {
		return nil, err
	}
	if kt != nil {
		if tbl := hc.rt.internFor(kt); tbl != nil {
			dom := kt.Domain
			inner := ev
			ev = func(h *hstate) uint64 { return internValue(tbl, dom, inner(h)) }
		}
	}
	if addrShift > 0 {
		inner := ev
		sh := addrShift
		ev = func(h *hstate) uint64 { return inner(h) >> sh }
	}
	return ev, nil
}

// elemValue compiles a set-element expression with interning.
func (hc *hcompiler) elemValue(e ast.Expr, et *sema.Type) (evalFn, error) {
	ev, err := hc.scalar(e)
	if err != nil {
		return nil, err
	}
	if tbl := hc.rt.internFor(et); tbl != nil {
		dom := et.Domain
		inner := ev
		ev = func(h *hstate) uint64 { return internValue(tbl, dom, inner(h)) }
	}
	return ev, nil
}

// ---------------------------------------------------------------------------
// Scalar load/store with value CSE

// slotList is a mutable slot collection shared between the compile-time
// registry and runtime invalidator closures.
type slotList struct{ slots []int }

func (hc *hcompiler) slotListFor(member string) *slotList {
	lst := hc.memberVSlots[member]
	if lst == nil {
		lst = &slotList{}
		hc.memberVSlots[member] = lst
	}
	return lst
}

// valueSlot assigns (or finds) the value cache slot for a pure scalar
// location.
func (hc *hcompiler) valueSlot(l loc) (int, bool) {
	if !hc.useCSE || l.class == "" || l.dynOff != nil {
		return 0, false
	}
	key := l.class + "#" + l.mem.Meta.Name
	slot, ok := hc.vslots[key]
	if !ok {
		slot = len(hc.vslots)
		hc.vslots[key] = slot
		lst := hc.slotListFor(l.mem.Meta.Name)
		lst.slots = append(lst.slots, slot)
	}
	return slot, true
}

// loadScalar compiles a cached scalar field read.
func (hc *hcompiler) loadScalar(l loc) evalFn {
	width, signed := l.mem.Width, l.mem.Signed
	ef := l.ef
	if l.dynOff != nil {
		dyn := l.dynOff
		if signed && width < 64 {
			return func(h *hstate) uint64 {
				return meta.SignExtend(meta.LoadField(ef(h), dyn(h), width), width)
			}
		}
		return func(h *hstate) uint64 {
			return meta.LoadField(ef(h), dyn(h), width)
		}
	}
	off := l.constOff
	raw := func(h *hstate) uint64 {
		v := meta.LoadField(ef(h), off, width)
		if signed && width < 64 {
			v = meta.SignExtend(v, width)
		}
		return v
	}
	slot, ok := hc.valueSlot(l)
	if !ok {
		return raw
	}
	return func(h *hstate) uint64 {
		if h.vvalid[slot] == h.epoch {
			return h.vcache[slot]
		}
		v := raw(h)
		h.vcache[slot] = v
		h.vvalid[slot] = h.epoch
		return v
	}
}

// storeScalar compiles a scalar field write with write-through caching
// and aliasing invalidation.
func (hc *hcompiler) storeScalar(l loc, rhs evalFn) (stmtFn, error) {
	width := l.mem.Width
	ef := l.ef
	if l.dynOff != nil {
		dyn := l.dynOff
		inval := hc.invalidator(l.mem.Meta.Name, -1)
		// Entry view fetched last: the offset or RHS evaluation may
		// grow a hash container and detach an earlier view.
		return func(h *hstate) {
			d := dyn(h)
			v := rhs(h)
			meta.StoreField(ef(h), d, width, v)
			inval(h)
		}, nil
	}
	off := l.constOff
	slot, cached := hc.valueSlot(l)
	var exclude = -1
	if cached {
		exclude = slot
	}
	inval := hc.invalidator(l.mem.Meta.Name, exclude)
	signed := l.mem.Signed
	if cached {
		return func(h *hstate) {
			v := rhs(h)
			meta.StoreField(ef(h), off, width, v)
			inval(h)
			if signed && width < 64 {
				v = meta.SignExtend(meta.Truncate(v, width), width)
			} else {
				v = meta.Truncate(v, width)
			}
			h.vcache[slot] = v
			h.vvalid[slot] = h.epoch
		}, nil
	}
	return func(h *hstate) {
		v := rhs(h)
		meta.StoreField(ef(h), off, width, v)
		inval(h)
	}, nil
}

// invalidator returns a closure dropping all value slots of a member
// except `exclude` (-1 for none). The slot list is shared with the
// registry, so slots added by later statements are covered too.
func (hc *hcompiler) invalidator(memberName string, exclude int) stmtFn {
	lst := hc.slotListFor(memberName)
	return func(h *hstate) {
		for _, s := range lst.slots {
			if s != exclude {
				h.vvalid[s] = 0
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Scalar expressions

func (hc *hcompiler) scalar(e ast.Expr) (evalFn, error) {
	switch x := e.(type) {
	case *ast.IntLit:
		v := uint64(x.Value)
		return func(h *hstate) uint64 { return v }, nil

	case *ast.StringLit:
		return func(h *hstate) uint64 { return 0 }, nil

	case *ast.Ident:
		if i, ok := hc.paramIdx[x.Name]; ok {
			idx := i
			return func(h *hstate) uint64 { return h.args[idx] }, nil
		}
		if v, ok := hc.a.Info.Consts[x.Name]; ok {
			c := uint64(v)
			return func(h *hstate) uint64 { return c }, nil
		}
		vt := hc.a.Info.ExprTypes[e]
		if vt.Meta != nil && vt.Kind == sema.KScalar {
			l, err := hc.location(e)
			if err != nil {
				return nil, err
			}
			return hc.loadScalar(l), nil
		}
		return nil, fmt.Errorf("identifier %s is not scalar-valued", x.Name)

	case *ast.IndexExpr:
		vt := hc.a.Info.ExprTypes[e]
		if vt.Kind != sema.KScalar {
			return nil, fmt.Errorf("map access is not scalar")
		}
		l, err := hc.location(e)
		if err != nil {
			return nil, err
		}
		return hc.loadScalar(l), nil

	case *ast.UnaryExpr:
		inner, err := hc.scalar(x.X)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case token.NOT:
			return func(h *hstate) uint64 {
				if inner(h) == 0 {
					return 1
				}
				return 0
			}, nil
		case token.SUB:
			return func(h *hstate) uint64 { return -inner(h) }, nil
		}
		return nil, fmt.Errorf("unsupported unary operator %s", x.Op)

	case *ast.BinaryExpr:
		return hc.binary(x)

	case *ast.MethodExpr:
		return hc.scalarMethod(x)

	case *ast.CallExpr:
		return hc.call(x)
	}
	return nil, fmt.Errorf("unsupported scalar expression %T", e)
}

func (hc *hcompiler) binary(x *ast.BinaryExpr) (evalFn, error) {
	a, err := hc.scalar(x.X)
	if err != nil {
		return nil, err
	}
	if x.Op == token.LAND || x.Op == token.LOR {
		b, err := hc.scalar(x.Y)
		if err != nil {
			return nil, err
		}
		if x.Op == token.LAND {
			return func(h *hstate) uint64 {
				if a(h) == 0 {
					return 0
				}
				if b(h) != 0 {
					return 1
				}
				return 0
			}, nil
		}
		return func(h *hstate) uint64 {
			if a(h) != 0 {
				return 1
			}
			if b(h) != 0 {
				return 1
			}
			return 0
		}, nil
	}
	b, err := hc.scalar(x.Y)
	if err != nil {
		return nil, err
	}
	// Comparisons against constants are the dominant handler pattern
	// (state-machine checks); specialize them.
	if c, isConst := x.Y.(*ast.IntLit); isConst || constIdent(hc, x.Y) != nil {
		var k int64
		if isConst {
			k = c.Value
		} else {
			k = *constIdent(hc, x.Y)
		}
		switch x.Op {
		case token.EQL:
			return func(h *hstate) uint64 { return b2u(int64(a(h)) == k) }, nil
		case token.NEQ:
			return func(h *hstate) uint64 { return b2u(int64(a(h)) != k) }, nil
		case token.LSS:
			return func(h *hstate) uint64 { return b2u(int64(a(h)) < k) }, nil
		case token.LEQ:
			return func(h *hstate) uint64 { return b2u(int64(a(h)) <= k) }, nil
		case token.GTR:
			return func(h *hstate) uint64 { return b2u(int64(a(h)) > k) }, nil
		case token.GEQ:
			return func(h *hstate) uint64 { return b2u(int64(a(h)) >= k) }, nil
		}
	}
	switch x.Op {
	case token.ADD:
		return func(h *hstate) uint64 { return a(h) + b(h) }, nil
	case token.SUB:
		return func(h *hstate) uint64 { return a(h) - b(h) }, nil
	case token.MUL:
		return func(h *hstate) uint64 { return a(h) * b(h) }, nil
	case token.QUO:
		return func(h *hstate) uint64 {
			bv := int64(b(h))
			if bv == 0 {
				return 0
			}
			return uint64(int64(a(h)) / bv)
		}, nil
	case token.REM:
		return func(h *hstate) uint64 {
			bv := int64(b(h))
			if bv == 0 {
				return 0
			}
			return uint64(int64(a(h)) % bv)
		}, nil
	case token.AND:
		return func(h *hstate) uint64 { return a(h) & b(h) }, nil
	case token.OR:
		return func(h *hstate) uint64 { return a(h) | b(h) }, nil
	case token.XOR:
		return func(h *hstate) uint64 { return a(h) ^ b(h) }, nil
	case token.SHL:
		return func(h *hstate) uint64 { return a(h) << (b(h) & 63) }, nil
	case token.SHR:
		return func(h *hstate) uint64 { return a(h) >> (b(h) & 63) }, nil
	case token.EQL:
		return func(h *hstate) uint64 { return b2u(int64(a(h)) == int64(b(h))) }, nil
	case token.NEQ:
		return func(h *hstate) uint64 { return b2u(int64(a(h)) != int64(b(h))) }, nil
	case token.LSS:
		return func(h *hstate) uint64 { return b2u(int64(a(h)) < int64(b(h))) }, nil
	case token.LEQ:
		return func(h *hstate) uint64 { return b2u(int64(a(h)) <= int64(b(h))) }, nil
	case token.GTR:
		return func(h *hstate) uint64 { return b2u(int64(a(h)) > int64(b(h))) }, nil
	case token.GEQ:
		return func(h *hstate) uint64 { return b2u(int64(a(h)) >= int64(b(h))) }, nil
	}
	return nil, fmt.Errorf("unsupported binary operator %s", x.Op)
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// constIdent returns the constant value of an identifier expression, or
// nil.
func constIdent(hc *hcompiler, e ast.Expr) *int64 {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if _, isParam := hc.paramIdx[id.Name]; isParam {
		return nil
	}
	if v, ok := hc.a.Info.Consts[id.Name]; ok {
		return &v
	}
	return nil
}

// ---------------------------------------------------------------------------
// Methods (set and map builtins)

func (hc *hcompiler) scalarMethod(x *ast.MethodExpr) (evalFn, error) {
	recvT := hc.a.Info.ExprTypes[x.Recv]
	switch recvT.Kind {
	case sema.KSet:
		return hc.setScalarMethod(x, recvT)
	case sema.KMapRef:
		return hc.mapMethod(x, recvT)
	}
	return nil, fmt.Errorf("method %s on non-collection", x.Name)
}

func (hc *hcompiler) setScalarMethod(x *ast.MethodExpr, recvT sema.VType) (evalFn, error) {
	mem := hc.a.Layout.ByMeta[recvT.Meta.Name]
	l, err := hc.location(x.Recv)
	if err != nil {
		return nil, err
	}
	ef := l.ef
	off := hc.offsetFn(l)
	rt := hc.rt
	univ := mem.SetUniv

	switch x.Name {
	case "add", "remove", "find":
		ev, err := hc.elemValue(x.Args[0], mem.Meta.Elem)
		if err != nil {
			return nil, err
		}
		if mem.Repr == SetBitVec {
			words := mem.SetWords
			dom := uint64(mem.SetDomain)
			// Mutators fetch the entry view last so that offset/element
			// evaluation growing a hash container cannot detach the
			// write target.
			switch x.Name {
			case "add":
				return func(h *hstate) uint64 {
					w := int(off(h) / 64)
					v := ev(h) % dom
					e := ef(h)
					meta.BitAdd(e[w:w+words], v)
					return 0
				}, nil
			case "remove":
				return func(h *hstate) uint64 {
					w := int(off(h) / 64)
					v := ev(h) % dom
					e := ef(h)
					meta.BitRemove(e[w:w+words], v)
					return 0
				}, nil
			default:
				return func(h *hstate) uint64 {
					e := ef(h)
					w := int(off(h) / 64)
					return b2u(meta.BitFind(e[w:w+words], ev(h)%dom))
				}, nil
			}
		}
		// getTree writes the tree handle into the entry, so the entry
		// view must be fetched after the offset; the tree itself lives
		// outside the arena and survives rehashes.
		switch x.Name {
		case "add":
			return func(h *hstate) uint64 {
				w := int(off(h) / 64)
				rt.getTree(ef(h), w, univ).Add(ev(h))
				return 0
			}, nil
		case "remove":
			return func(h *hstate) uint64 {
				w := int(off(h) / 64)
				rt.getTree(ef(h), w, univ).Remove(ev(h))
				return 0
			}, nil
		default:
			return func(h *hstate) uint64 {
				w := int(off(h) / 64)
				return b2u(rt.getTree(ef(h), w, univ).Find(ev(h)))
			}, nil
		}

	case "size", "empty":
		if mem.Repr == SetBitVec {
			words := mem.SetWords
			if x.Name == "size" {
				return func(h *hstate) uint64 {
					e := ef(h)
					w := int(off(h) / 64)
					return uint64(meta.BitCount(e[w : w+words]))
				}, nil
			}
			return func(h *hstate) uint64 {
				e := ef(h)
				w := int(off(h) / 64)
				return b2u(meta.BitEmpty(e[w : w+words]))
			}, nil
		}
		if x.Name == "size" {
			return func(h *hstate) uint64 {
				w := int(off(h) / 64)
				return uint64(rt.getTree(ef(h), w, univ).Size())
			}, nil
		}
		return func(h *hstate) uint64 {
			w := int(off(h) / 64)
			return b2u(rt.getTree(ef(h), w, univ).Empty())
		}, nil

	case "clear":
		if mem.Repr == SetBitVec {
			words := mem.SetWords
			return func(h *hstate) uint64 {
				w := int(off(h) / 64)
				e := ef(h)
				meta.BitClear(e[w : w+words])
				return 0
			}, nil
		}
		return func(h *hstate) uint64 {
			w := int(off(h) / 64)
			rt.getTree(ef(h), w, univ).Clear()
			return 0
		}, nil
	}
	return nil, fmt.Errorf("unknown set method %s", x.Name)
}

// mapMethod compiles map.set/get/remove/has including the range forms.
func (hc *hcompiler) mapMethod(x *ast.MethodExpr, recvT sema.VType) (evalFn, error) {
	mo := recvT.Meta
	mem := hc.a.Layout.ByMeta[mo.Name]
	g := hc.a.Layout.Groups[mem.GroupID]
	gs := hc.rt.groups[mem.GroupID]
	if g.Sync {
		hc.syncGroups[g.ID] = true
	}

	var recvKeys []ast.Expr
	cur := x.Recv
	for {
		ix, ok := cur.(*ast.IndexExpr)
		if !ok {
			break
		}
		recvKeys = append([]ast.Expr{ix.Index}, recvKeys...)
		cur = ix.X
	}
	allKeys := append(append([]ast.Expr{}, recvKeys...), x.Args[0])

	isRange := (x.Name == "set" && len(x.Args) == 3) || (x.Name == "get" && len(x.Args) == 2)
	if isRange {
		if len(mem.InnerDomains) > 0 || g.Impl == ImplGlobal || g.Impl == ImplHash2 {
			return nil, fmt.Errorf("range %s on %s requires a single-dimension container-backed map", x.Name, mo.Name)
		}
		if mem.IsSet == 1 {
			return nil, fmt.Errorf("range %s on set-valued map %s", x.Name, mo.Name)
		}
		keyRaw, err := hc.scalar(allKeys[0])
		if err != nil {
			return nil, err
		}
		var nEval evalFn
		if x.Name == "set" {
			nEval, err = hc.scalar(x.Args[2])
		} else {
			nEval, err = hc.scalar(x.Args[1])
		}
		if err != nil {
			return nil, err
		}
		c := gs.c
		sh := g.AddrShift
		width := mem.Width
		bitOff := mem.BitOff
		signed := mem.Signed

		granules := func(h *hstate) (uint64, uint64) {
			k := keyRaw(h)
			n := nEval(h)
			if n == 0 {
				return k >> sh, 0
			}
			start := k >> sh
			end := (k + n - 1) >> sh
			return start, end - start + 1
		}

		tick := hc.profileTick(mem)
		if tick == nil {
			tick = func() {}
		}
		if x.Name == "set" {
			vEval, err := hc.scalar(x.Args[1])
			if err != nil {
				return nil, err
			}
			inval := hc.invalidator(mo.Name, -1)
			return func(h *hstate) uint64 {
				tick()
				start, cnt := granules(h)
				if cnt > 0 {
					c.Fill(start, cnt, bitOff, width, vEval(h))
					inval(h)
				}
				return 0
			}, nil
		}
		if signed && width < 64 {
			return func(h *hstate) uint64 {
				tick()
				start, cnt := granules(h)
				if cnt == 0 {
					return 0
				}
				return meta.SignExtend(c.RangeOr(start, cnt, bitOff, width), width)
			}, nil
		}
		return func(h *hstate) uint64 {
			tick()
			start, cnt := granules(h)
			if cnt == 0 {
				return 0
			}
			return c.RangeOr(start, cnt, bitOff, width)
		}, nil
	}

	switch x.Name {
	case "set":
		l, err := hc.memberLocation(mem, allKeys)
		if err != nil {
			return nil, err
		}
		vEval, err := hc.scalar(x.Args[1])
		if err != nil {
			return nil, err
		}
		st, err := hc.storeScalar(l, vEval)
		if err != nil {
			return nil, err
		}
		return func(h *hstate) uint64 {
			st(h)
			return 0
		}, nil
	case "get":
		l, err := hc.memberLocation(mem, allKeys)
		if err != nil {
			return nil, err
		}
		return hc.loadScalar(l), nil
	case "remove", "has":
		if g.Impl == ImplGlobal || g.Impl == ImplHash2 {
			return nil, fmt.Errorf("%s unsupported on %s", x.Name, mo.Name)
		}
		keyEval, err := hc.keyValue(allKeys[0], g.KeyType, g.AddrShift)
		if err != nil {
			return nil, err
		}
		c := gs.c
		if x.Name == "remove" {
			// Removing resets the whole entry: invalidate every member of
			// the group.
			invals := make([]stmtFn, 0, len(g.Members))
			for _, m := range g.Members {
				invals = append(invals, hc.invalidator(m.Meta.Name, -1))
			}
			return func(h *hstate) uint64 {
				c.Remove(keyEval(h))
				for _, iv := range invals {
					iv(h)
				}
				return 0
			}, nil
		}
		return func(h *hstate) uint64 {
			return b2u(c.Peek(keyEval(h)) != nil)
		}, nil
	}
	return nil, fmt.Errorf("unknown map method %s", x.Name)
}

// ---------------------------------------------------------------------------
// Builtin and external calls

func (hc *hcompiler) call(x *ast.CallExpr) (evalFn, error) {
	switch x.Name {
	case sema.BuiltinAssert:
		got, err := hc.scalar(x.Args[0])
		if err != nil {
			return nil, err
		}
		want, err := hc.scalar(x.Args[1])
		if err != nil {
			return nil, err
		}
		msg := "assertion failed"
		if len(x.Args) == 3 {
			if s, ok := x.Args[2].(*ast.StringLit); ok {
				msg = s.Value
			}
		}
		name := hc.h.Name
		rt := hc.rt
		return func(h *hstate) uint64 {
			rt.stats.Asserts++
			g, w := got(h), want(h)
			if g != w {
				rt.stats.AssertFailures++
				h.m.Report(name, msg, g, w)
			}
			return 0
		}, nil

	case sema.BuiltinPtrOffset:
		p, err := hc.scalar(x.Args[0])
		if err != nil {
			return nil, err
		}
		n, err := hc.scalar(x.Args[1])
		if err != nil {
			return nil, err
		}
		return func(h *hstate) uint64 { return p(h) + n(h) }, nil
	}

	idx := -1
	for i, n := range hc.a.Info.Externals {
		if n == x.Name {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil, fmt.Errorf("unknown function %s", x.Name)
	}
	argFns := make([]evalFn, len(x.Args))
	for i, a := range x.Args {
		fn, err := hc.scalar(a)
		if err != nil {
			return nil, err
		}
		argFns[i] = fn
	}
	buf := make([]uint64, len(argFns))
	rt := hc.rt
	return func(h *hstate) uint64 {
		for i, fn := range argFns {
			buf[i] = fn(h)
		}
		return rt.externals[idx](h.m, buf)
	}, nil
}

// ---------------------------------------------------------------------------
// Set expressions

func (hc *hcompiler) set(e ast.Expr) (setFn, error) {
	vt := hc.a.Info.ExprTypes[e]
	if vt.Kind != sema.KSet {
		return nil, fmt.Errorf("expression is not a set")
	}

	switch x := e.(type) {
	case *ast.Ident, *ast.IndexExpr:
		mem := hc.a.Layout.ByMeta[vt.Meta.Name]
		l, err := hc.location(e)
		if err != nil {
			return nil, err
		}
		ef := l.ef
		off := hc.offsetFn(l)
		rt := hc.rt
		if mem.Repr == SetBitVec {
			words := mem.SetWords
			return func(h *hstate) setRef {
				entry := ef(h)
				w := int(off(h) / 64)
				return setRef{bits: entry[w : w+words]}
			}, nil
		}
		univ := mem.SetUniv
		return func(h *hstate) setRef {
			w := int(off(h) / 64)
			return setRef{tree: rt.getTree(ef(h), w, univ)}
		}, nil

	case *ast.BinaryExpr:
		a, err := hc.set(x.X)
		if err != nil {
			return nil, err
		}
		b, err := hc.set(x.Y)
		if err != nil {
			return nil, err
		}
		elem := vt.Elem
		if elem == nil {
			return nil, fmt.Errorf("set operation with unknown element type")
		}
		if hc.reprForElem(elem) == SetBitVec {
			words := meta.BitWords(elem.Domain)
			scratch := make([]uint64, words)
			if x.Op == token.AND {
				return func(h *hstate) setRef {
					ra, rb := a(h), b(h)
					meta.BitAnd(scratch, ra.bits, rb.bits)
					return setRef{bits: scratch, owned: true}
				}, nil
			}
			return func(h *hstate) setRef {
				ra, rb := a(h), b(h)
				meta.BitOr(scratch, ra.bits, rb.bits)
				return setRef{bits: scratch, owned: true}
			}, nil
		}
		if x.Op == token.AND {
			return func(h *hstate) setRef {
				ra, rb := a(h), b(h)
				return setRef{tree: meta.Intersect(ra.tree, rb.tree), owned: true}
			}, nil
		}
		return func(h *hstate) setRef {
			ra, rb := a(h), b(h)
			return setRef{tree: meta.Union(ra.tree, rb.tree), owned: true}
		}, nil
	}
	return nil, fmt.Errorf("unsupported set expression %T", e)
}

// reprForElem mirrors layout's set-representation decision for rvalue
// temporaries.
func (hc *hcompiler) reprForElem(elem *sema.Type) SetRepr {
	if hc.a.Opts.SmartSelect && elem.Domain > 0 &&
		meta.BitWords(elem.Domain)*8 <= hc.a.Opts.BitSetMaxBytes {
		return SetBitVec
	}
	return SetTree
}
