package compiler

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestReadProfileFileTypedErrors pins the hardened reader's error
// taxonomy: every malformed shape returns a *ProfileError naming what
// went wrong, never a panic and never silent last-writer-wins.
func TestReadProfileFileTypedErrors(t *testing.T) {
	cases := []struct {
		name   string
		body   string
		reason string // substring of the ProfileError reason, "" = must succeed
	}{
		{"valid", `{"counts":{"a":1,"b":2}}`, ""},
		{"empty-counts", `{"counts":{}}`, ""},
		{"null-counts", `{"counts":null}`, ""},
		{"no-counts", `{}`, ""},
		{"unknown-field", `{"extra":[1,{"x":[]}],"counts":{"m":3}}`, ""},
		{"truncated", `{"counts":{"a":1`, "truncated"},
		{"truncated-empty", ``, "truncated"},
		{"duplicate-member", `{"counts":{"a":1,"a":2}}`, `duplicate member "a"`},
		{"duplicate-counts", `{"counts":{},"counts":{}}`, `duplicate "counts"`},
		{"overflow", `{"counts":{"a":18446744073709551616}}`, "out of range"},
		{"negative", `{"counts":{"a":-5}}`, "out of range"},
		{"float", `{"counts":{"a":1.5}}`, "out of range"},
		{"string-count", `{"counts":{"a":"9"}}`, "want an integer"},
		{"non-object", `[1,2,3]`, "want an object"},
		{"counts-array", `{"counts":[1]}`, "want an object"},
		{"trailing", `{"counts":{}} {"counts":{}}`, "trailing data"},
	}
	dir := t.TempDir()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(dir, tc.name+".json")
			if err := os.WriteFile(path, []byte(tc.body), 0o644); err != nil {
				t.Fatal(err)
			}
			p, err := ReadProfileFile(path)
			if tc.reason == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				if p == nil || p.Counts == nil {
					t.Fatal("success must return a non-nil profile with a usable map")
				}
				return
			}
			var pe *ProfileError
			if !errors.As(err, &pe) {
				t.Fatalf("error is %T (%v), want *ProfileError", err, err)
			}
			if pe.Path != path {
				t.Errorf("error path = %q, want %q", pe.Path, path)
			}
			if !strings.Contains(pe.Reason, tc.reason) {
				t.Errorf("reason %q does not mention %q", pe.Reason, tc.reason)
			}
		})
	}
	if _, err := ReadProfileFile(filepath.Join(dir, "missing.json")); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("missing file: got %v, want fs not-exist error", err)
	}
}

// FuzzReadProfile hammers the profile reader with arbitrary bytes: it
// must never panic, failures must be typed, and anything it accepts
// must survive a WriteFile/ReadProfileFile round trip unchanged.
func FuzzReadProfile(f *testing.F) {
	f.Add([]byte(`{"counts":{"a":1,"b":2}}`))
	f.Add([]byte(`{"counts":{"a":1`))
	f.Add([]byte(`{"counts":{"a":18446744073709551616}}`))
	f.Add([]byte(`{"counts":{"a":1,"a":2}}`))
	f.Add([]byte(`{"not-a-member":true,"counts":{"ghost":3}}`))
	f.Add([]byte(`{"counts":{"a":-5}}`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`{"counts":null}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "p.json")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		p, err := ReadProfileFile(path)
		if err != nil {
			var pe *ProfileError
			if !errors.As(err, &pe) {
				t.Fatalf("untyped error: %T (%v)", err, err)
			}
			return
		}
		// Accepted profiles must be usable and round-trip clean.
		_ = p.Hashable()
		_ = p.Hash()
		_ = p.String()
		out := filepath.Join(t.TempDir(), "rt.json")
		if err := p.WriteFile(out); err != nil {
			t.Fatalf("round-trip write: %v", err)
		}
		rt, err := ReadProfileFile(out)
		if err != nil {
			t.Fatalf("round-trip read: %v", err)
		}
		if len(p.Counts) != 0 || len(rt.Counts) != 0 {
			if !reflect.DeepEqual(p.Counts, rt.Counts) {
				t.Fatalf("round trip changed counts: %v -> %v", p.Counts, rt.Counts)
			}
		}
	})
}
