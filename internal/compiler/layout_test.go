package compiler

import (
	"strings"
	"testing"
)

func compileT(t *testing.T, src string, opts Options) *Analysis {
	t.Helper()
	a, err := Compile(src, opts)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return a
}

func TestMSanLayoutDecisions(t *testing.T) {
	src := `
address := pointer
size := int64
value := int8
addr2label = universe::map(address, value)
addr2size = map(address, size)
h(address p) { addr2label[p] = 0; addr2size[p] = 1; }
insert after LoadInst call h($1)
`
	a := compileT(t, src, DefaultOptions())
	if len(a.Layout.Groups) != 1 {
		t.Fatalf("groups = %d, want 1 (coalesced by address key)", len(a.Layout.Groups))
	}
	g := a.Layout.Groups[0]
	if g.Impl != ImplShadow {
		t.Fatalf("impl = %s, want shadow (factor %.2f <= 3)", g.Impl, g.ShadowFactor)
	}
	if g.ShadowFactor > 3 {
		t.Fatalf("shadow factor = %.2f", g.ShadowFactor)
	}
	// The universe int8 label must template to all-ones in its field.
	label := g.Member("addr2label")
	if !label.UnivInit || label.Width != 8 {
		t.Fatalf("label member: %+v", label)
	}
}

func TestEraserLayoutDecisions(t *testing.T) {
	src := `
address := pointer : sync
tid := threadid : 64
lid := lockid : 256
status := int8
thread2Lock = map(tid, set(lid))
addr2Lock = universe::map(address, set(lid))
addr2Thread = map(address, set(tid))
addr2Status = map(address, status)
h(address a, tid t) { addr2Status[a] = 1; }
insert after LoadInst call h($1, $t)
`
	a := compileT(t, src, DefaultOptions())
	if len(a.Layout.Groups) != 2 {
		t.Fatalf("groups = %d, want 2 (tid group + address group)", len(a.Layout.Groups))
	}
	var addrG, tidG *Group
	for _, g := range a.Layout.Groups {
		switch g.KeyType.Name {
		case "address":
			addrG = g
		case "tid":
			tidG = g
		}
	}
	if addrG == nil || tidG == nil {
		t.Fatal("missing expected groups")
	}
	if addrG.Impl != ImplPageTable {
		t.Fatalf("address group impl = %s, want pagetable (factor %.2f > 3)", addrG.Impl, addrG.ShadowFactor)
	}
	if !addrG.Sync {
		t.Fatal("address group must be sync")
	}
	if tidG.Impl != ImplArray {
		t.Fatalf("tid group impl = %s, want array", tidG.Impl)
	}
	locks := addrG.Member("addr2Lock")
	if locks.Repr != SetBitVec || locks.SetWords != 4 || !locks.SetUniv {
		t.Fatalf("lockset member: %+v", locks)
	}
	threads := addrG.Member("addr2Thread")
	if threads.Repr != SetBitVec || threads.SetWords != 1 {
		t.Fatalf("threadset member: %+v", threads)
	}
}

func TestSetReprThreshold(t *testing.T) {
	// 4096-bit domain = 512 bytes: still bitvec; 4097+ and unbounded: tree.
	src := `
address := pointer
small := lockid : 4096
big := lockid : 4160
unbounded := lockid
m1 = map(address, set(small))
m2 = map(address, set(big))
m3 = map(address, set(unbounded))
h(address a) { m1[a].add(1); m2[a].add(1); m3[a].add(1); }
insert after LoadInst call h($1)
`
	a := compileT(t, src, DefaultOptions())
	g := a.Layout.Groups[0]
	if g.Member("m1").Repr != SetBitVec {
		t.Error("4096-bit set should be a bit-vector")
	}
	if g.Member("m2").Repr != SetTree {
		t.Error("4160-bit set should be a tree")
	}
	if g.Member("m3").Repr != SetTree {
		t.Error("unbounded set should be a tree")
	}
}

func TestUnboundedNonPointerKeyIsHash(t *testing.T) {
	src := `
k := int64
v := int64
m = map(k, v)
h(k x) { m[x] = 1; }
insert after LoadInst call h($1)
`
	a := compileT(t, src, DefaultOptions())
	if a.Layout.Groups[0].Impl != ImplHash {
		t.Fatalf("impl = %s, want hash", a.Layout.Groups[0].Impl)
	}
}

func TestGlobalGroup(t *testing.T) {
	src := `
counter := int64
c1 = counter
c2 = counter
h(counter x) { c1 = c1 + x; c2 = c2 - x; }
insert after LoadInst call h($1)
`
	a := compileT(t, src, DefaultOptions())
	if len(a.Layout.Groups) != 1 || a.Layout.Groups[0].Impl != ImplGlobal {
		t.Fatalf("globals not grouped: %+v", a.Layout.Groups)
	}
}

func TestInnerBoundedKeyFolds(t *testing.T) {
	src := `
address := pointer
tid := threadid : 8
clock := int64
vc = map(address, map(tid, clock))
h(address a, tid t) { vc[a][t] = vc[a][t] + 1; }
insert after LoadInst call h($1, $t)
`
	a := compileT(t, src, DefaultOptions())
	g := a.Layout.Groups[0]
	m := g.Member("vc")
	if len(m.InnerDomains) != 1 || m.InnerDomains[0] != 8 {
		t.Fatalf("inner domains: %v", m.InnerDomains)
	}
	if g.EntryWords != 8 {
		t.Fatalf("entry words = %d, want 8 (8 clocks)", g.EntryWords)
	}
	// 8 words/granule over 8-byte granularity = factor 8 > 3 → pagetable.
	if g.Impl != ImplPageTable {
		t.Fatalf("impl = %s", g.Impl)
	}
}

func TestHash2ForDoubleUnbounded(t *testing.T) {
	src := `
address := pointer
v := int64
m = map(address, map(address, v))
h(address a, address b) { m[a][b] = 1; }
insert after LoadInst call h($1, $1)
`
	a := compileT(t, src, DefaultOptions())
	if a.Layout.Groups[0].Impl != ImplHash2 {
		t.Fatalf("impl = %s, want hash2", a.Layout.Groups[0].Impl)
	}
}

func TestDSOnlySplitsGroups(t *testing.T) {
	src := `
address := pointer
a1 = map(address, int8v)
a2 = map(address, int8v)
int8v := int8
h(address p) { a1[p] = 1; a2[p] = 2; }
insert after LoadInst call h($1)
`
	full := compileT(t, src, DefaultOptions())
	ds := compileT(t, src, DSOnlyOptions())
	if len(full.Layout.Groups) != 1 {
		t.Fatalf("full groups = %d", len(full.Layout.Groups))
	}
	if len(ds.Layout.Groups) != 2 {
		t.Fatalf("ds-only groups = %d, want 2 (no coalescing)", len(ds.Layout.Groups))
	}
}

func TestNaiveUsesHashAndTree(t *testing.T) {
	src := `
address := pointer
lid := lockid : 64
m = map(address, set(lid))
h(address p, lid l) { m[p].add(l); }
insert after LoadInst call h($1, $1)
`
	a := compileT(t, src, NaiveOptions())
	g := a.Layout.Groups[0]
	if g.Impl != ImplHash {
		t.Fatalf("naive impl = %s, want hash", g.Impl)
	}
	if g.Member("m").Repr != SetTree {
		t.Fatalf("naive set repr = %s, want tree", g.Member("m").Repr)
	}
}

func TestScalarWidthFromDomain(t *testing.T) {
	src := `
address := pointer
lid := lockid : 200
m = map(address, lid)
h(address p) { m[p] = 3; }
insert after LoadInst call h($1)
`
	a := compileT(t, src, DefaultOptions())
	m := a.Layout.Groups[0].Member("m")
	if m.Width != 8 {
		t.Fatalf("width = %d, want 8 (domain 200)", m.Width)
	}
	if m.Signed {
		t.Fatal("lockid must be unsigned")
	}
}

func TestPackingAvoidsStraddle(t *testing.T) {
	src := `
address := pointer
a := int8
b := int64
c := int8
m1 = map(address, a)
m2 = map(address, b)
m3 = map(address, c)
h(address p) { m1[p] = 1; m2[p] = 2; m3[p] = 3; }
insert after LoadInst call h($1)
`
	an := compileT(t, src, DefaultOptions())
	g := an.Layout.Groups[0]
	for _, m := range g.Members {
		startWord := m.BitOff / 64
		endWord := (m.BitOff + m.Width - 1) / 64
		if startWord != endWord {
			t.Fatalf("member %s straddles words: off=%d width=%d", m.Meta.Name, m.BitOff, m.Width)
		}
	}
}

func TestCountLOC(t *testing.T) {
	src := `
// comment only
a := int8   // trailing

/* block
   comment */
b := int8 /* inline */
`
	if got := CountLOC(src); got != 2 {
		t.Fatalf("LOC = %d, want 2", got)
	}
}

func TestPlanOutput(t *testing.T) {
	src := `
address := pointer
v := int8
m = universe::map(address, v)
h(address p) { m[p] = 0; m[p] = 1; }
insert after LoadInst call h($1)
`
	a := compileT(t, src, DefaultOptions())
	plan := a.Plan()
	for _, want := range []string{"impl=shadow", "shadow-factor", "handler h", "scalar width=8"} {
		if !strings.Contains(plan, want) {
			t.Errorf("plan missing %q:\n%s", want, plan)
		}
	}
}

func TestLowerRulesErrorsAndShadowDetection(t *testing.T) {
	a := compileT(t, `
address := pointer
label := int64
h(address p, label l) { }
insert after LoadInst call h($1, $1.m)
`, DefaultOptions())
	if !a.NeedShadow {
		t.Fatal(".m argument must set NeedShadow")
	}
	b := compileT(t, `
address := pointer
h(address p) { }
insert after LoadInst call h($1)
`, DefaultOptions())
	if b.NeedShadow {
		t.Fatal("no .m and no result: NeedShadow must be false")
	}
}
