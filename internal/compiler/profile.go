package compiler

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// Profile-guided coalescing — the future work §3.2.1 sketches. The
// static analysis conservatively assumes every branch executes, so maps
// that are only touched on cold paths (MSan's allocation-size sidecar,
// touched at malloc/free) get coalesced into entries that every hot
// access then drags through the cache. A profiling run measures real
// per-member access counts; recompiling with the profile splits cold
// members out of hot groups.

// Profile holds per-metadata-member dynamic access counts from a
// profiling run.
type Profile struct {
	Counts map[string]uint64
}

// Hot reports whether a member is hot relative to the hottest member of
// its candidate group. Members below 1/16 of the group's peak count are
// considered cold.
func (p *Profile) hot(name string, peak uint64) bool {
	if p == nil || peak == 0 {
		return true
	}
	return p.Counts[name] >= peak/16
}

// String renders the profile sorted by count, for the explain tool.
func (p *Profile) String() string {
	type kv struct {
		name  string
		count uint64
	}
	var rows []kv
	for n, c := range p.Counts {
		rows = append(rows, kv{n, c})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].count != rows[j].count {
			return rows[i].count > rows[j].count
		}
		return rows[i].name < rows[j].name
	})
	var b strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&b, "%-20s %12d accesses\n", r.name, r.count)
	}
	return b.String()
}

// ProfileMetricPrefix prefixes per-member access counts in the obs
// metrics registry; ProfileFromCounts strips it back off. Keeping the
// profile inside the ordinary metrics stream is what makes the
// -profile-out / -profile-in round trip a plain registry export.
const ProfileMetricPrefix = "profile.member."

// profileFile is the on-disk profile format.
type profileFile struct {
	Counts map[string]uint64 `json:"counts"`
}

// WriteFile saves the profile as JSON for a later -profile-in run.
func (p *Profile) WriteFile(path string) error {
	b, err := json.MarshalIndent(profileFile{Counts: p.Counts}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ReadProfileFile loads a profile written by WriteFile.
func ReadProfileFile(path string) (*Profile, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f profileFile
	if err := json.Unmarshal(b, &f); err != nil {
		return nil, fmt.Errorf("profile %s: %w", path, err)
	}
	if f.Counts == nil {
		f.Counts = make(map[string]uint64)
	}
	return &Profile{Counts: f.Counts}, nil
}

// ProfileFromCounts extracts the per-member access counts embedded in a
// metrics counter map under ProfileMetricPrefix.
func ProfileFromCounts(counts map[string]uint64) *Profile {
	p := &Profile{Counts: make(map[string]uint64)}
	for k, v := range counts {
		if name, ok := strings.CutPrefix(k, ProfileMetricPrefix); ok {
			p.Counts[name] = v
		}
	}
	return p
}

// Profile returns the per-member access counts accumulated by a runtime
// compiled with Options.ProfileCollect.
func (rt *Runtime) Profile() *Profile {
	p := &Profile{Counts: make(map[string]uint64)}
	for name, idx := range rt.A.memberCounterIdx {
		p.Counts[name] = rt.memberCounts[idx]
	}
	return p
}

// partitionByProfile splits one coalescing bucket's members into a hot
// list and a cold list according to the profile. With no profile, all
// members are hot (the paper's default conservative behavior).
func partitionByProfile(p *Profile, metas []string, counts func(string) uint64) (hot, cold []string) {
	var peak uint64
	for _, m := range metas {
		if c := counts(m); c > peak {
			peak = c
		}
	}
	for _, m := range metas {
		if p.hot(m, peak) {
			hot = append(hot, m)
		} else {
			cold = append(cold, m)
		}
	}
	return hot, cold
}
