package compiler

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Profile-guided coalescing — the future work §3.2.1 sketches. The
// static analysis conservatively assumes every branch executes, so maps
// that are only touched on cold paths (MSan's allocation-size sidecar,
// touched at malloc/free) get coalesced into entries that every hot
// access then drags through the cache. A profiling run measures real
// per-member access counts; recompiling with the profile splits cold
// members out of hot groups.

// Profile holds per-metadata-member dynamic access counts from a
// profiling run.
type Profile struct {
	Counts map[string]uint64
}

// Hot reports whether a member is hot relative to the hottest member of
// its candidate group. Members below 1/16 of the group's peak count are
// considered cold.
func (p *Profile) hot(name string, peak uint64) bool {
	if p == nil || peak == 0 {
		return true
	}
	return p.Counts[name] >= peak/16
}

// String renders the profile sorted by count, for the explain tool.
func (p *Profile) String() string {
	type kv struct {
		name  string
		count uint64
	}
	var rows []kv
	for n, c := range p.Counts {
		rows = append(rows, kv{n, c})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].count != rows[j].count {
			return rows[i].count > rows[j].count
		}
		return rows[i].name < rows[j].name
	})
	var b strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&b, "%-20s %12d accesses\n", r.name, r.count)
	}
	return b.String()
}

// MaxHashableProfileMembers bounds the profiles folded into an Options
// fingerprint. Member counts come from analysis source, so real
// profiles hold a handful of entries; anything past this bound is
// adversarial or corrupt and compiles uncached instead of hashing
// unbounded input on every cache probe.
const MaxHashableProfileMembers = 4096

// Hashable reports whether the profile can be canonically folded into
// an Options fingerprint. A nil profile is trivially hashable.
func (p *Profile) Hashable() bool {
	return p == nil || len(p.Counts) <= MaxHashableProfileMembers
}

// Hash is the canonical FNV-64a digest over sorted name=count pairs,
// skipping zero counts (absent and explicit-zero members select the
// same layout, so they must hash the same). It is what folds a profile
// into an Options fingerprint and into checkpoint/journal fingerprints.
func (p *Profile) Hash() uint64 {
	names := make([]string, 0, len(p.Counts))
	for n, c := range p.Counts {
		if c > 0 {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	h := fnv.New64a()
	var num [20]byte
	for _, n := range names {
		io.WriteString(h, n)
		h.Write([]byte{'='})
		h.Write(strconv.AppendUint(num[:0], p.Counts[n], 10))
		h.Write([]byte{';'})
	}
	return h.Sum64()
}

// MatchesAnalysis reports whether every member the profile names exists
// in the analysis — the staleness check for profiles loaded from disk.
// An empty profile matches trivially (it selects the static layout).
func (p *Profile) MatchesAnalysis(a *Analysis) error {
	if p == nil || a == nil {
		return nil
	}
	var unknown []string
	for name := range p.Counts {
		if a.Info.Metas[name] == nil {
			unknown = append(unknown, name)
		}
	}
	if len(unknown) == 0 {
		return nil
	}
	sort.Strings(unknown)
	return fmt.Errorf("profile names unknown member(s) %s", strings.Join(unknown, ", "))
}

// ProfileMetricPrefix prefixes per-member access counts in the obs
// metrics registry; ProfileFromCounts strips it back off. Keeping the
// profile inside the ordinary metrics stream is what makes the
// -profile-out / -profile-in round trip a plain registry export.
const ProfileMetricPrefix = "profile.member."

// profileFile is the on-disk profile format.
type profileFile struct {
	Counts map[string]uint64 `json:"counts"`
}

// WriteFile saves the profile as JSON for a later -profile-in run.
func (p *Profile) WriteFile(path string) error {
	b, err := json.MarshalIndent(profileFile{Counts: p.Counts}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ProfileError is the typed error ReadProfileFile returns for a
// malformed profile file: truncated input, duplicate keys, counts that
// overflow uint64 or are negative, or a non-object shape. Callers that
// want to degrade to static selection match it with errors.As.
type ProfileError struct {
	Path   string
	Reason string
	Err    error // underlying decode error, may be nil
}

func (e *ProfileError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("profile %s: %s: %v", e.Path, e.Reason, e.Err)
	}
	return fmt.Sprintf("profile %s: %s", e.Path, e.Reason)
}

func (e *ProfileError) Unwrap() error { return e.Err }

// ReadProfileFile loads a profile written by WriteFile. Malformed input
// — truncation, duplicate member names, counts outside uint64 — returns
// a *ProfileError rather than silently last-writer-wins semantics or a
// panic; profiles are fed back into compilation, so a corrupt one must
// be rejected loudly at the boundary.
func ReadProfileFile(path string) (*Profile, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	p, perr := ParseProfile(b)
	if perr != nil {
		perr.Path = path
		return nil, perr
	}
	return p, nil
}

// ParseProfile decodes the WriteFile JSON format with token-level
// validation (the Path field of a returned error is left for the
// caller to fill in).
func ParseProfile(b []byte) (*Profile, *ProfileError) {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.UseNumber()
	fail := func(reason string, err error) (*Profile, *ProfileError) {
		if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
			reason, err = "truncated", nil
		}
		return nil, &ProfileError{Reason: reason, Err: err}
	}
	tok, err := dec.Token()
	if err != nil {
		return fail("not valid JSON", err)
	}
	if d, ok := tok.(json.Delim); !ok || d != '{' {
		return fail(fmt.Sprintf("top level is %v, want an object", tok), nil)
	}
	counts := make(map[string]uint64)
	sawCounts := false
	for dec.More() {
		keyTok, err := dec.Token()
		if err != nil {
			return fail("bad field name", err)
		}
		key := keyTok.(string)
		if key != "counts" {
			if err := skipJSONValue(dec); err != nil {
				return fail(fmt.Sprintf("bad value for field %q", key), err)
			}
			continue
		}
		if sawCounts {
			return fail(`duplicate "counts" field`, nil)
		}
		sawCounts = true
		tok, err := dec.Token()
		if err != nil {
			return fail("bad counts value", err)
		}
		if tok == nil { // "counts": null — empty profile
			continue
		}
		if d, ok := tok.(json.Delim); !ok || d != '{' {
			return fail(fmt.Sprintf("counts is %v, want an object", tok), nil)
		}
		for dec.More() {
			nameTok, err := dec.Token()
			if err != nil {
				return fail("bad member name", err)
			}
			name := nameTok.(string)
			if _, dup := counts[name]; dup {
				return fail(fmt.Sprintf("duplicate member %q", name), nil)
			}
			valTok, err := dec.Token()
			if err != nil {
				return fail(fmt.Sprintf("bad count for member %q", name), err)
			}
			num, ok := valTok.(json.Number)
			if !ok {
				return fail(fmt.Sprintf("count for member %q is %v, want an integer", name, valTok), nil)
			}
			c, err := strconv.ParseUint(num.String(), 10, 64)
			if err != nil {
				return fail(fmt.Sprintf("count for member %q out of range", name), err)
			}
			counts[name] = c
		}
		if _, err := dec.Token(); err != nil { // closing '}'
			return fail("truncated counts object", err)
		}
	}
	if _, err := dec.Token(); err != nil { // closing '}'
		return fail("truncated", err)
	}
	if tok, err := dec.Token(); err != io.EOF {
		return fail(fmt.Sprintf("trailing data after profile object: %v", tok), nil)
	}
	return &Profile{Counts: counts}, nil
}

// skipJSONValue consumes one JSON value (scalar, object or array) from
// the decoder, recursing through nesting.
func skipJSONValue(dec *json.Decoder) error {
	tok, err := dec.Token()
	if err != nil {
		return err
	}
	d, ok := tok.(json.Delim)
	if !ok || (d != '{' && d != '[') {
		return nil
	}
	for dec.More() {
		if d == '{' {
			if _, err := dec.Token(); err != nil { // key
				return err
			}
		}
		if err := skipJSONValue(dec); err != nil {
			return err
		}
	}
	_, err = dec.Token() // closing delimiter
	return err
}

// ProfileFromCounts extracts the per-member access counts embedded in a
// metrics counter map under ProfileMetricPrefix.
func ProfileFromCounts(counts map[string]uint64) *Profile {
	p := &Profile{Counts: make(map[string]uint64)}
	for k, v := range counts {
		if name, ok := strings.CutPrefix(k, ProfileMetricPrefix); ok {
			p.Counts[name] = v
		}
	}
	return p
}

// Profile returns the per-member access counts accumulated by a runtime
// compiled with Options.ProfileCollect.
func (rt *Runtime) Profile() *Profile {
	p := &Profile{Counts: make(map[string]uint64)}
	for name, idx := range rt.A.memberCounterIdx {
		p.Counts[name] = rt.memberCounts[idx]
	}
	return p
}

// partitionByProfile splits one coalescing bucket's members into a hot
// list and a cold list according to the profile. With no profile, all
// members are hot (the paper's default conservative behavior).
func partitionByProfile(p *Profile, metas []string, counts func(string) uint64) (hot, cold []string) {
	var peak uint64
	for _, m := range metas {
		if c := counts(m); c > peak {
			peak = c
		}
	}
	for _, m := range metas {
		if p.hot(m, peak) {
			hot = append(hot, m)
		} else {
			cold = append(cold, m)
		}
	}
	return hot, cold
}
