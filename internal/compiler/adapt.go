package compiler

import (
	"fmt"
	"sort"
	"strings"
)

// Adaptive re-selection — the self-tuning loop over the §3.2.1 profile
// machinery. The static cost model decides containers once, before the
// program runs; AdaptOptions folds a measured Profile back into the
// compilation switches so the next compile re-selects containers with
// knowledge of the observed traffic (cold members split out of hot
// groups, cold pointer-keyed groups traded from offset shadow to page
// table). The pass is pure and deterministic: the same Options and the
// same canonicalized profile always produce the same adapted Options,
// the same fingerprint, and the same decision log — which is what makes
// adapted analyses cacheable, hot-swaps replayable from a journal, and
// the decision log golden-pinnable.
//
// Adaptation changes layout and speed, never meaning. In particular it
// NEVER changes Granularity: granularity variants alter verdicts on
// non-word-aligned workloads, so the granularity switch is vetoed here
// and the veto is logged on every run.

// AdaptDecision is one logged step of the re-selection pass.
type AdaptDecision struct {
	Subject string // member name or the aspect decided ("granularity", "layout", ...)
	Action  string // "keep-hot", "split-cold", "veto", "re-select", "static", "disable"
	Reason  string
}

// AdaptResult is the outcome of AdaptOptions: the (possibly) adapted
// Options plus the full decision trail. Changed reports whether the
// adapted Options fingerprint differently from running static — when
// false, callers keep the static compile (and its cache entry).
type AdaptResult struct {
	Opts      Options
	Decisions []AdaptDecision
	Changed   bool
}

// DecisionLog renders the decision trail deterministically, one line
// per decision, for golden pinning and the explain tooling.
func (r AdaptResult) DecisionLog() string {
	var b strings.Builder
	fmt.Fprintf(&b, "adaptation: changed=%v\n", r.Changed)
	for _, d := range r.Decisions {
		fmt.Fprintf(&b, "  %-10s %-14s %s\n", d.Action, d.Subject, d.Reason)
	}
	return b.String()
}

// coldThresholdDivisor mirrors Profile.hot: members below peak/16 are
// cold relative to the hottest member.
const coldThresholdDivisor = 16

// AdaptOptions folds a measured profile into o, producing the adapted
// compilation switches for the hot-swap recompile. The profile is
// canonicalized (zero counts dropped) so equivalent profiles adapt to
// identical fingerprints. Per-member hot/cold decisions are judged
// against the global peak count; the per-group split in buildLayout
// uses per-group peaks, which can only keep MORE members hot, so
// Changed=false is a sound "no layout change" signal. ProfileCollect is
// always cleared: the adapted analysis runs without counters.
func (o Options) AdaptOptions(p *Profile) AdaptResult {
	res := AdaptResult{Opts: o}
	res.Opts.ProfileCollect = false
	res.Opts.Profile = nil
	if o.ProfileCollect {
		res.Decisions = append(res.Decisions, AdaptDecision{
			Subject: "counters", Action: "disable",
			Reason: "adapted analysis runs without profile counters",
		})
	}
	res.Decisions = append(res.Decisions, AdaptDecision{
		Subject: "granularity", Action: "veto",
		Reason: fmt.Sprintf("verdict safety: adaptation never changes granularity (stays %dB)", o.Granularity),
	})

	canon := canonicalProfile(p)
	if canon == nil {
		res.Decisions = append(res.Decisions, AdaptDecision{
			Subject: "layout", Action: "static",
			Reason: "empty profile: static cost model retained",
		})
		return res
	}
	if !o.Coalesce {
		res.Decisions = append(res.Decisions, AdaptDecision{
			Subject: "layout", Action: "static",
			Reason: "coalescing disabled: no groups to re-select",
		})
		return res
	}

	names := make([]string, 0, len(canon.Counts))
	var peak uint64
	for n, c := range canon.Counts {
		names = append(names, n)
		if c > peak {
			peak = c
		}
	}
	sort.Strings(names)
	cold := 0
	for _, n := range names {
		c := canon.Counts[n]
		if canon.hot(n, peak) {
			res.Decisions = append(res.Decisions, AdaptDecision{
				Subject: n, Action: "keep-hot",
				Reason: fmt.Sprintf("%d accesses >= peak %d / %d", c, peak, coldThresholdDivisor),
			})
		} else {
			cold++
			res.Decisions = append(res.Decisions, AdaptDecision{
				Subject: n, Action: "split-cold",
				Reason: fmt.Sprintf("%d accesses < peak %d / %d", c, peak, coldThresholdDivisor),
			})
		}
	}
	if cold == 0 {
		res.Decisions = append(res.Decisions, AdaptDecision{
			Subject: "layout", Action: "static",
			Reason: "observed traffic confirms the static model: no cold member to split",
		})
		return res
	}

	res.Opts.Profile = canon
	res.Changed = true
	res.Decisions = append(res.Decisions, AdaptDecision{
		Subject: "layout", Action: "re-select",
		Reason: fmt.Sprintf("%d cold member(s): profile-guided cold split and container re-selection enabled", cold),
	})
	return res
}

// canonicalProfile copies p with zero-count entries dropped. Members
// absent from a profile count as zero, so a profile with explicit zeros
// selects the identical layout as one without — canonicalizing makes
// them fingerprint identically too. Returns nil for an effectively
// empty profile.
func canonicalProfile(p *Profile) *Profile {
	if p == nil || len(p.Counts) == 0 {
		return nil
	}
	counts := make(map[string]uint64, len(p.Counts))
	for n, c := range p.Counts {
		if c > 0 {
			counts[n] = c
		}
	}
	if len(counts) == 0 {
		return nil
	}
	return &Profile{Counts: counts}
}
