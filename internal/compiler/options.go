// Package compiler implements ALDAcc, the optimizing compiler for ALDA
// (§3.2, §5). It consumes the typed model from package sema and the
// access summary from package access and produces a compiled Analysis:
// metadata layout (coalesced groups with selected containers), event
// handlers compiled to closures with metadata-lookup CSE, and lowered
// insertion rules for package instrument.
package compiler

import "repro/internal/vm"

// Options are ALDAcc's compilation switches. The zero value is not
// useful; use DefaultOptions. The ablation configurations of Figure 4
// and §6.2 are expressed by turning individual optimizations off.
type Options struct {
	// Coalesce merges metadata maps with equal key types into one
	// container (§5.2). Off in the "ds-only" ablation.
	Coalesce bool
	// CSE enables metadata-lookup common-subexpression elimination
	// within handler bodies (§5.4). Off in the "ds-only" ablation.
	CSE bool
	// SmartSelect enables data-structure selection (§5.3). When off,
	// every map becomes a generic hash map and every set a tree set —
	// the naive implementation the paper says runs out of memory or
	// time on non-trivial benchmarks.
	SmartSelect bool
	// ProfileCollect compiles per-member access counters into the
	// handlers; Runtime.Profile() reads them after a run.
	ProfileCollect bool
	// Profile, when set, drives profile-guided coalescing (§3.2.1's
	// future work): members that the profiling run shows are cold
	// relative to their group split into a separate group so hot
	// accesses stop dragging them through the cache.
	Profile *Profile

	// FuseHandlers merges handlers attached to the same insertion point
	// into one hook whose bodies compile together: one dispatch, one
	// lock acquisition, and entry/value lookups CSE'd *across* analyses.
	// This is what makes a combined analysis (§6.4.2) cheaper than the
	// sum of its parts beyond map coalescing alone.
	FuseHandlers bool

	// Granularity is the metadata granularity in bytes: 1, 2, 4 or 8
	// (§5.1, default word = 8).
	Granularity int
	// ShadowFactorThreshold picks page table over offset shadow memory
	// when metadata-bytes-per-program-byte exceeds it (§5.3, default 3).
	ShadowFactorThreshold float64
	// BitSetMaxBytes is the largest fixed set stored as an inline
	// bit-vector (§5.3, default 512).
	BitSetMaxBytes int
	// ArrayMapMaxKeys is the largest bounded key domain stored as a
	// direct-indexed array.
	ArrayMapMaxKeys int64
	// AddrSpace sizes offset shadow memory; it must cover the VM's
	// simulated address space.
	AddrSpace uint64

	// Engine selects the VM execution tier runs of this configuration
	// use (switch-dispatch interpreter or closure-threaded code). The
	// tier never changes analysis meaning — conformance sweeps both —
	// but it participates in the options fingerprint so cached
	// compilations stay keyed to the full configuration a run names.
	Engine vm.Engine
}

// DefaultOptions returns the full-optimization configuration
// ("ALDAcc-full" in Figure 4).
func DefaultOptions() Options {
	return Options{
		Coalesce:              true,
		CSE:                   true,
		SmartSelect:           true,
		FuseHandlers:          true,
		Granularity:           8,
		ShadowFactorThreshold: 3,
		BitSetMaxBytes:        512,
		ArrayMapMaxKeys:       1 << 20,
		AddrSpace:             1 << 28,
	}
}

// DSOnlyOptions returns the "ALDAcc-ds-only" ablation of Figure 4:
// data-structure selection stays on, map coalescing and lookup CSE are
// disabled.
func DSOnlyOptions() Options {
	o := DefaultOptions()
	o.Coalesce = false
	o.CSE = false
	o.FuseHandlers = false
	return o
}

// NaiveOptions returns the unoptimized configuration: hash maps and tree
// sets everywhere, no coalescing, no CSE, no fusion.
func NaiveOptions() Options {
	o := DefaultOptions()
	o.Coalesce = false
	o.CSE = false
	o.SmartSelect = false
	o.FuseHandlers = false
	return o
}

// NoFuseOptions returns DefaultOptions with handler fusion disabled —
// the configuration that isolates FuseHandlers in the ablation matrix.
func NoFuseOptions() Options {
	o := DefaultOptions()
	o.FuseHandlers = false
	return o
}

// WithGranularity returns o at a different metadata granularity
// (1, 2, 4 or 8 bytes).
func (o Options) WithGranularity(g int) Options {
	o.Granularity = g
	return o
}

// WithEngine returns o targeting a different VM execution tier.
func (o Options) WithEngine(e vm.Engine) Options {
	o.Engine = e
	return o
}

// NamedOptions pairs an ablation configuration with a stable name.
// GranularityVariant marks the configurations that change only the
// metadata granularity: analysis verdicts are granularity-invariant
// only for word-aligned workloads, so differential checkers gate these
// on workload shape.
type NamedOptions struct {
	Name               string
	Opts               Options
	GranularityVariant bool
}

// AblationMatrix returns every optimization configuration the paper's
// Figure 4 ablates plus the granularity variants of §5.1, full-opt
// first, each in both VM execution tiers ("-thr" suffixes the
// closure-threaded legs). This is the option matrix the conformance
// subsystem sweeps: every entry must produce identical analysis
// verdicts on identical inputs — the configurations change layout and
// speed, never meaning, and the engine axis proves the threaded tier
// preserves every observable the interpreter defines.
func AblationMatrix() []NamedOptions {
	base := []NamedOptions{
		{Name: "full", Opts: DefaultOptions()},
		{Name: "nofuse", Opts: NoFuseOptions()},
		{Name: "dsonly", Opts: DSOnlyOptions()},
		{Name: "naive", Opts: NaiveOptions()},
		{Name: "gran1", Opts: DefaultOptions().WithGranularity(1), GranularityVariant: true},
		{Name: "gran2", Opts: DefaultOptions().WithGranularity(2), GranularityVariant: true},
		{Name: "gran4", Opts: DefaultOptions().WithGranularity(4), GranularityVariant: true},
	}
	out := make([]NamedOptions, 0, 2*len(base))
	for _, n := range base {
		out = append(out, n, NamedOptions{
			Name:               n.Name + "-thr",
			Opts:               n.Opts.WithEngine(vm.EngineThreaded),
			GranularityVariant: n.GranularityVariant,
		})
	}
	return out
}

func (o Options) granShift() uint {
	switch o.Granularity {
	case 1:
		return 0
	case 2:
		return 1
	case 4:
		return 2
	default:
		return 3
	}
}
