package compiler

import (
	"fmt"
	"sync"

	"repro/internal/lang/ast"
	"repro/internal/lang/sema"
	"repro/internal/meta"
	"repro/internal/vm"
)

// ExternalFn implements an ALDA external function call (escape hatch,
// §5.6.2) in Go.
type ExternalFn func(m *vm.Machine, args []uint64) uint64

// Runtime is the per-run instantiation of a compiled analysis: fresh
// containers, tree arena and handler closures. Create one per Machine
// with Analysis.NewRuntime and install Handlers on the machine.
type Runtime struct {
	A      *Analysis
	groups []*groupState
	trees  []*meta.TreeSet

	handlers []vm.HandlerFn

	externals []ExternalFn

	// interns maps bounded lockid type names to value→dense-id tables —
	// the "hash-based locking operations" of hand-tuned Eraser (§6.2),
	// automated: programs generate lock ids from an unbounded space
	// (addresses), the analysis declares a bounded domain, the runtime
	// interns.
	interns map[string]map[uint64]uint64

	// memberCounts holds per-member access counters when the analysis
	// was compiled with ProfileCollect.
	memberCounts []uint64

	stats RuntimeStats
}

// RuntimeStats accumulates cheap counters for the explain tool and
// tests.
type RuntimeStats struct {
	Asserts        uint64
	AssertFailures uint64
}

type groupState struct {
	g      *Group
	c      meta.Container
	c2     *meta.HashMap2
	global []uint64
	mu     sync.Mutex
}

// NewRuntime instantiates containers and compiles handler closures.
// External functions referenced by the analysis must have been supplied
// via Analysis.Externals.
func (a *Analysis) NewRuntime() (*Runtime, error) {
	rt := &Runtime{A: a}
	for _, g := range a.Layout.Groups {
		gs := &groupState{g: g}
		switch g.Impl {
		case ImplGlobal:
			gs.global = make([]uint64, g.EntryWords)
			copy(gs.global, g.Template)
		case ImplArray:
			gs.c = meta.NewArrayMap(g.KeyType.Domain, g.EntryWords, g.Template)
		case ImplShadow:
			gs.c = meta.NewShadowMap(g.MaxKeys, g.EntryWords, g.Template)
		case ImplPageTable:
			gs.c = meta.NewPageTableMap(g.EntryWords, g.Template)
		case ImplHash:
			gs.c = meta.NewHashMap(g.EntryWords, g.Template)
		case ImplHash2:
			gs.c2 = meta.NewHashMap2(g.EntryWords, g.Template)
		}
		rt.groups = append(rt.groups, gs)
	}

	if a.Opts.ProfileCollect {
		rt.memberCounts = make([]uint64, len(a.Info.MetaOrder))
	}

	rt.externals = make([]ExternalFn, len(a.Info.Externals))
	for i, name := range a.Info.Externals {
		fn, ok := a.Externals[name]
		if !ok {
			return nil, fmt.Errorf("compiler: external function %q has no implementation", name)
		}
		rt.externals[i] = fn
	}

	if err := rt.buildHandlers(); err != nil {
		return nil, err
	}
	return rt, nil
}

// Handlers returns the handler table to install on a vm.Machine; indices
// match the HandlerID fields in the analysis's insertion rules.
func (rt *Runtime) Handlers() []vm.HandlerFn { return rt.handlers }

// Stats returns runtime counters.
func (rt *Runtime) Stats() RuntimeStats { return rt.stats }

// MetadataBytes sums the analysis's current metadata storage: container
// backing plus the tree arena — §6.2's memory-footprint quantity.
func (rt *Runtime) MetadataBytes() uint64 {
	var n uint64
	for _, gs := range rt.groups {
		if gs.c != nil {
			n += gs.c.Bytes()
		}
		if gs.c2 != nil {
			n += gs.c2.Bytes()
		}
		n += uint64(len(gs.global)) * 8
	}
	for _, t := range rt.trees {
		if t != nil {
			n += uint64(t.Size()+2) * 40 // nodes + header, complement sets count exclusions
			if t.Complement {
				n += uint64(len(t.Elems())) * 40
			}
		}
	}
	return n
}

// ContainerLookups sums per-container lookup counters (explain tool,
// ablation tests).
func (rt *Runtime) ContainerLookups() uint64 {
	var n uint64
	for _, gs := range rt.groups {
		if gs.c != nil {
			n += gs.c.Lookups()
		}
		if gs.c2 != nil {
			n += gs.c2.Lookups()
		}
	}
	return n
}

// tree returns the arena tree for a handle (1-based).
func (rt *Runtime) tree(handle uint64) *meta.TreeSet { return rt.trees[handle-1] }

// newTree arena-allocates a tree and returns its handle.
func (rt *Runtime) newTree(t *meta.TreeSet) uint64 {
	rt.trees = append(rt.trees, t)
	return uint64(len(rt.trees))
}

// internFor returns the interning table for a type, or nil when the
// type's values are already dense. Lock identifiers with a bounded
// domain are interned (programs use addresses as lock ids; the bounded
// metadata domain needs dense indices).
func (rt *Runtime) internFor(t *sema.Type) map[uint64]uint64 {
	if t == nil || t.Domain <= 0 || t.Prim != ast.LockID {
		return nil
	}
	if rt.interns == nil {
		rt.interns = make(map[string]map[uint64]uint64)
	}
	tbl, ok := rt.interns[t.Name]
	if !ok {
		tbl = make(map[uint64]uint64)
		rt.interns[t.Name] = tbl
	}
	return tbl
}

// internValue maps a raw value to its dense id, assigning ids
// first-come. Beyond the declared domain ids wrap, the documented
// ThreadSanitizer-style limitation (§3.1.2).
func internValue(tbl map[uint64]uint64, domain int64, v uint64) uint64 {
	if id, ok := tbl[v]; ok {
		return id
	}
	id := uint64(len(tbl)) % uint64(domain)
	tbl[v] = id
	return id
}

// getTree materializes the tree slot of a member within an entry.
func (rt *Runtime) getTree(entry []uint64, wordOff int, universe bool) *meta.TreeSet {
	h := entry[wordOff]
	if h == 0 {
		var t *meta.TreeSet
		if universe {
			t = meta.NewUniverseTreeSet()
		} else {
			t = meta.NewTreeSet()
		}
		entry[wordOff] = rt.newTree(t)
		return t
	}
	return rt.tree(h)
}
