package compiler_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/compiler"
	"repro/internal/instrument"
	"repro/internal/mir"
	"repro/internal/vm"
)

// runSrc compiles an analysis, instruments the program, runs it and
// returns the result.
func runSrc(t *testing.T, src string, opts compiler.Options, p *mir.Program,
	ext map[string]compiler.ExternalFn) *vm.Result {
	t.Helper()
	a, err := compiler.Compile(src, opts)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	for n, f := range ext {
		a.Externals[n] = f
	}
	inst, err := instrument.Apply(p, a)
	if err != nil {
		t.Fatalf("instrument: %v", err)
	}
	rt, err := a.NewRuntime()
	if err != nil {
		t.Fatalf("runtime: %v", err)
	}
	m, err := vm.New(inst, vm.Config{TrackShadow: a.NeedShadow})
	if err != nil {
		t.Fatalf("vm: %v", err)
	}
	m.Handlers = rt.Handlers()
	res, err := m.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

func mustInstrument(t *testing.T, a *compiler.Analysis) *mir.Program {
	t.Helper()
	inst, err := instrument.Apply(loadsProg(5), a)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func mustMachine(t *testing.T, p *mir.Program, shadow bool) *vm.Machine {
	t.Helper()
	m, err := vm.New(p, vm.Config{TrackShadow: shadow})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// loadsProg emits exactly n straight-line loads from distinct heap
// addresses (no loop machinery, so LoadInst hooks fire exactly n times).
func loadsProg(n int64) *mir.Program {
	p := mir.NewProgram()
	b := p.NewFunc("main", 0)
	buf := b.Call("malloc", mir.C(n*8))
	for i := int64(0); i < n; i++ {
		a := b.Add(mir.R(buf), mir.C(i*8))
		b.Store(mir.R(a), mir.C(i), 8)
		b.Load(mir.R(a), 8)
	}
	b.RetVal(mir.C(0))
	return p
}

// assertReports is a helper matching report messages.
func assertReports(t *testing.T, res *vm.Result, want ...string) {
	t.Helper()
	if len(res.Reports) != len(want) {
		t.Fatalf("got %d reports, want %d:\n%s", len(res.Reports), len(want), vm.FormatReports(res.Reports))
	}
	for i, w := range want {
		if !strings.Contains(res.Reports[i].Message, w) {
			t.Fatalf("report %d = %q, want %q", i, res.Reports[i].Message, w)
		}
	}
}

func TestScalarSignedMetadata(t *testing.T) {
	// An int8 metadata value stores -1 and compares signed.
	src := `
address := pointer
v := int8
m = map(address, v)
h(address p) {
    m[p] = -1;
    alda_assert(m[p] < 0, 1, "sign lost");
    m[p] = m[p] + 1;
    alda_assert(m[p], 0, "wraparound wrong");
}
insert after LoadInst call h($1)
`
	res := runSrc(t, src, compiler.DefaultOptions(), loadsProg(3), nil)
	assertReports(t, res) // no failures
}

func TestUniverseScalarTemplate(t *testing.T) {
	// universe:: scalar starts all-ones (-1 signed).
	src := `
address := pointer
v := int8
m = universe::map(address, v)
probe(address p) {
    alda_assert(m[p], -1, "universe scalar not all-ones");
}
insert after LoadInst call probe($1)
`
	res := runSrc(t, src, compiler.DefaultOptions(), loadsProg(1), nil)
	assertReports(t, res)
}

func TestGlobalCounters(t *testing.T) {
	src := `
counter := int64
n = counter
h(counter x) { n = n + 1; }
fin() { alda_assert(n, 5, "global count wrong"); }
insert after LoadInst call h($1)
insert before ProgramEnd call fin()
`
	res := runSrc(t, src, compiler.DefaultOptions(), loadsProg(5), nil)
	assertReports(t, res)
}

func TestSetOperations(t *testing.T) {
	src := `
address := pointer
e := lockid : 100
s = map(address, set(e))
u = universe::map(address, universe::set(e))
h(address p) {
    alda_assert(s[p].empty(), 1, "new set not empty");
    s[p].add(3);
    s[p].add(7);
    s[p].add(3);
    alda_assert(s[p].size(), 2, "size wrong");
    alda_assert(s[p].find(3), 1, "find miss");
    alda_assert(s[p].find(4), 0, "phantom element");
    s[p].remove(3);
    alda_assert(s[p].find(3), 0, "remove failed");
    alda_assert(u[p].find(99), 1, "universe missing element");
    u[p] = u[p] & s[p];
    alda_assert(u[p].size(), 1, "intersection with universe wrong");
    s[p] = s[p] | u[p];
    alda_assert(s[p].size(), 1, "union wrong");
    s[p].clear();
    alda_assert(s[p].empty(), 1, "clear failed");
}
insert after LoadInst call h($1)
`
	res := runSrc(t, src, compiler.DefaultOptions(), loadsProg(1), nil)
	assertReports(t, res)
}

func TestTreeSetOperations(t *testing.T) {
	// Unbounded element domain forces the tree representation,
	// including the universe complement form.
	src := `
address := pointer
e := lockid
s = map(address, set(e))
u = universe::map(address, universe::set(e))
h(address p) {
    s[p].add(1000000);
    alda_assert(s[p].find(1000000), 1, "tree add/find");
    alda_assert(u[p].find(123456789), 1, "tree universe");
    u[p].remove(42);
    alda_assert(u[p].find(42), 0, "tree universe remove");
    u[p] = u[p] & s[p];
    alda_assert(u[p].find(1000000), 1, "tree intersect");
    alda_assert(u[p].find(2000000), 0, "tree intersect extra");
}
insert after LoadInst call h($1)
`
	res := runSrc(t, src, compiler.DefaultOptions(), loadsProg(1), nil)
	assertReports(t, res)
}

func TestVectorClockInnerKeys(t *testing.T) {
	src := `
address := pointer
tid := threadid : 8
clock := int64
vc = map(address, map(tid, clock))
h(address p, tid t) {
    vc[p][t] = vc[p][t] + 1;
}
fin(address p, tid t) {
    alda_assert(vc[p][t], 3, "clock wrong");
}
insert after LoadInst call h($1, $t)
insert before ProgramEnd call fin($1, $t)
`
	// One address loaded three times; ProgramEnd's $1 is bogus here so
	// craft the program manually.
	p := mir.NewProgram()
	b := p.NewFunc("main", 0)
	buf := b.Call("malloc", mir.C(8))
	b.Store(mir.R(buf), mir.C(1), 8)
	b.Load(mir.R(buf), 8)
	b.Load(mir.R(buf), 8)
	b.Load(mir.R(buf), 8)
	b.RetVal(mir.R(buf))
	// fin's $1 resolves against the RetVal instruction's operand list
	// ($1 = the returned register = buf).
	res := runSrc(t, src, compiler.DefaultOptions(), p, nil)
	assertReports(t, res)
}

func TestHash2Semantics(t *testing.T) {
	src := `
address := pointer
v := int64
pair = map(address, map(address, v))
h(address a, address b) {
    pair[a][b] = pair[a][b] + 1;
    alda_assert(pair[b][a] + pair[a][b] > 0, 1, "hash2 lost value");
}
insert after StoreInst call h($2, $1)
`
	p := mir.NewProgram()
	b := p.NewFunc("main", 0)
	buf := b.Call("malloc", mir.C(16))
	b.Store(mir.R(buf), mir.R(buf), 8)
	b.RetVal(mir.C(0))
	res := runSrc(t, src, compiler.DefaultOptions(), p, nil)
	assertReports(t, res)
}

func TestRangeOps(t *testing.T) {
	src := `
address := pointer
size := int64
v := int8
m = map(address, v)
mark(address p, size n) { m.set(p, 5, n); }
checkIn(address p) {
    alda_assert(m.get(p, 64), 5, "range not marked");
    alda_assert(m[p], 5, "point read after range set");
}
insert after func malloc call mark($r, $1)
insert before func free call checkIn($1)
`
	p := mir.NewProgram()
	b := p.NewFunc("main", 0)
	buf := b.Call("malloc", mir.C(64))
	b.CallVoid("free", mir.R(buf))
	b.RetVal(mir.C(0))
	res := runSrc(t, src, compiler.DefaultOptions(), p, nil)
	assertReports(t, res)
}

func TestMapRemoveAndHas(t *testing.T) {
	src := `
address := pointer
v := int64
m = map(address, v)
h(address p) {
    m[p] = 9;
    alda_assert(m.has(p), 1, "has after set");
    m.remove(p);
    alda_assert(m[p], 0, "value after remove");
}
insert after LoadInst call h($1)
`
	res := runSrc(t, src, compiler.DefaultOptions(), loadsProg(1), nil)
	assertReports(t, res)
}

func TestExternalCallsAndPtrOffset(t *testing.T) {
	src := `
address := pointer
v := int64
m = map(address, v)
h(address p) {
    m[ptr_offset(p, 8)] = my_double(21);
    alda_assert(m[ptr_offset(p, 8)], 42, "external result lost");
}
insert after LoadInst call h($1)
`
	called := 0
	ext := map[string]compiler.ExternalFn{
		"my_double": func(m *vm.Machine, args []uint64) uint64 {
			called++
			return args[0] * 2
		},
	}
	res := runSrc(t, src, compiler.DefaultOptions(), loadsProg(1), ext)
	assertReports(t, res)
	if called == 0 {
		t.Fatal("external never called")
	}
}

func TestMissingExternalFails(t *testing.T) {
	src := `
address := pointer
h(address p) { mystery(p); }
insert after LoadInst call h($1)
`
	a, err := compiler.Compile(src, compiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.NewRuntime(); err == nil || !strings.Contains(err.Error(), "no implementation") {
		t.Fatalf("err = %v", err)
	}
}

func TestLockInterningWraps(t *testing.T) {
	// Domain 4: the fifth distinct lock id wraps onto id 0.
	src := `
l := lockid : 4
tid := threadid : 8
s = map(tid, set(l))
h(l x, tid t) { s[t].add(x); }
fin(tid t) { alda_assert(s[t].size(), 4, "interning wrap wrong"); }
insert after LockInst call h($1, $t)
insert before ProgramEnd call fin($t)
`
	p := mir.NewProgram()
	b := p.NewFunc("main", 0)
	for i := 0; i < 5; i++ {
		l := b.Call("malloc", mir.C(8))
		b.Lock(mir.R(l))
		b.Unlock(mir.R(l))
	}
	b.RetVal(mir.C(0))
	res := runSrc(t, src, compiler.DefaultOptions(), p, nil)
	assertReports(t, res)
}

func TestAssertMessageAndCounts(t *testing.T) {
	src := `
address := pointer
h(address p) { alda_assert(1, 2, "always fails"); }
insert after LoadInst call h($1)
`
	// One load site executed four times: reports dedup by location.
	p := mir.NewProgram()
	fb := p.NewFunc("main", 0)
	f := fb.Func()
	f.NRegs = 4
	f.Blocks = []mir.Block{
		{Instrs: []mir.Instr{
			{Op: mir.OpCall, Dst: 0, Callee: "malloc", Args: []mir.Operand{mir.C(8)}},
			{Op: mir.OpStore, A: mir.R(0), B: mir.C(1), Size: 8},
			{Op: mir.OpConst, Dst: 1, Imm: 4},
			{Op: mir.OpBr, Target: 1},
		}},
		{Instrs: []mir.Instr{
			{Op: mir.OpLoad, Dst: 2, A: mir.R(0), Size: 8},
			{Op: mir.OpSub, Dst: 1, A: mir.R(1), B: mir.C(1)},
			{Op: mir.OpGt, Dst: 3, A: mir.R(1), B: mir.C(0)},
			{Op: mir.OpCondBr, A: mir.R(3), Target: 1, Else: 2},
		}},
		{Instrs: []mir.Instr{{Op: mir.OpRetVal, A: mir.C(0)}}},
	}
	res := runSrc(t, src, compiler.DefaultOptions(), p, nil)
	if len(res.Reports) != 1 {
		t.Fatalf("reports = %d:\n%s", len(res.Reports), vm.FormatReports(res.Reports))
	}
	r := res.Reports[0]
	if r.Message != "always fails" || r.Count != 4 || r.Got != 1 || r.Expected != 2 {
		t.Fatalf("report: %+v", r)
	}
}

// Optimization equivalence: all configurations must produce identical
// report streams on a metadata-heavy analysis.
func TestConfigEquivalence(t *testing.T) {
	src := `
address := pointer
tid := threadid : 8
e := lockid : 100
v := int8
status = map(address, v)
owners = map(address, set(tid))
locks = universe::map(address, set(e))
held = map(tid, set(e))
h(address p, tid t) {
    if (!owners[p].find(t)) {
        owners[p].add(t);
        status[p] = status[p] + 1;
    }
    if (status[p] > 1) {
        locks[p] = locks[p] & held[t];
        alda_assert(locks[p].empty(), 0, "empty lockset");
    }
    status.set(p, status[p], 16);
    alda_assert(status.get(p, 16), status[p], "range mismatch");
}
insert after LoadInst call h($1, $t)
insert after StoreInst call h($2, $t)
`
	configs := map[string]compiler.Options{
		"full":    compiler.DefaultOptions(),
		"ds-only": compiler.DSOnlyOptions(),
		"naive":   compiler.NaiveOptions(),
	}
	var ref string
	for name, opts := range configs {
		res := runSrc(t, src, opts, loadsProg(40), nil)
		var sb strings.Builder
		for _, r := range res.Reports {
			fmt.Fprintf(&sb, "%s@%s x%d\n", r.Message, r.Where, r.Count)
		}
		if ref == "" {
			ref = sb.String()
			continue
		}
		if sb.String() != ref {
			t.Fatalf("config %s diverged:\n%s\nvs reference:\n%s", name, sb.String(), ref)
		}
	}
}

// CSE must not change behavior even when keys alias dynamically.
func TestValueCacheAliasing(t *testing.T) {
	// Two parameters that are the same address at runtime: a write
	// through one must be visible through the other.
	src := `
address := pointer
v := int64
m = map(address, v)
h(address a, address b) {
    m[a] = 1;
    m[b] = 2;
    alda_assert(m[a], 2, "aliased write lost (stale value cache)");
}
insert after LoadInst call h($1, $1)
`
	res := runSrc(t, src, compiler.DefaultOptions(), loadsProg(1), nil)
	assertReports(t, res)
}

func TestInPlaceSetPeephole(t *testing.T) {
	// m[p] = m[p] & other must behave exactly like the general path.
	src := `
address := pointer
e := lockid : 64
m = universe::map(address, universe::set(e))
o = map(address, set(e))
h(address p) {
    o[p].add(5);
    o[p].add(9);
    m[p] = m[p] & o[p];
    alda_assert(m[p].size(), 2, "in-place intersect wrong");
    m[p] = m[p] | o[p];
    alda_assert(m[p].size(), 2, "in-place union wrong");
}
insert after LoadInst call h($1)
`
	res := runSrc(t, src, compiler.DefaultOptions(), loadsProg(1), nil)
	assertReports(t, res)
}

func TestHandlerReturnFeedsShadow(t *testing.T) {
	// Handler return value becomes the hooked load's shadow; a second
	// handler observes it through $r.m-style propagation.
	src := `
address := pointer
label := int64
label mark(address p) { return 7; }
check(label l) { alda_assert(l, 7, "shadow lost"); }
insert after LoadInst call mark($1)
insert before BranchInst call check($1.m)
`
	p := mir.NewProgram()
	b := p.NewFunc("main", 0)
	buf := b.Call("malloc", mir.C(8))
	b.Store(mir.R(buf), mir.C(3), 8)
	v := b.Load(mir.R(buf), 8)
	t1 := b.NewBlock()
	b.CondBr(mir.R(v), t1, t1)
	b.SetBlock(t1)
	b.RetVal(mir.C(0))
	res := runSrc(t, src, compiler.DefaultOptions(), p, nil)
	assertReports(t, res)
}
