package compiler

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/lang/ast"
	"repro/internal/lang/sema"
	"repro/internal/meta"
)

// ImplKind is the container choice for a metadata group.
type ImplKind int

// Container implementations (§5.3).
const (
	ImplGlobal    ImplKind = iota // unkeyed globals, one entry
	ImplArray                     // bounded key domain
	ImplShadow                    // offset-based shadow memory
	ImplPageTable                 // hashed page directory
	ImplHash                      // generic fallback
	ImplHash2                     // two unbounded key dimensions
)

var implNames = [...]string{"global", "array", "shadow", "pagetable", "hash", "hash2"}

func (k ImplKind) String() string { return implNames[k] }

// SetRepr is the set representation choice.
type SetRepr int

// Set representations.
const (
	SetBitVec SetRepr = iota
	SetTree
)

func (r SetRepr) String() string {
	if r == SetBitVec {
		return "bitvec"
	}
	return "tree"
}

// Member is one original metadata object's slot inside a coalesced
// group entry.
type Member struct {
	Meta    *sema.MetaObj
	GroupID int

	// InnerDomains lists bounded key dimensions beyond the group key,
	// folded into the entry layout (vector-clock style); InnerStride is
	// the per-step stride in bits for each dimension.
	InnerDomains []int64
	InnerStride  []uint

	// Scalar leaf.
	BitOff   uint
	Width    uint
	Signed   bool
	UnivInit bool // universe:: scalar — template all-ones

	// Set leaf.
	IsSet     int // 0 scalar, 1 set (int, not bool, to keep struct comparable in tests)
	Repr      SetRepr
	WordOff   int // bitvec first word / tree handle word
	SetWords  int
	SetDomain int64
	SetUniv   bool
}

// Group is one coalesced metadata container.
type Group struct {
	ID      int
	Impl    ImplKind
	KeyType *sema.Type // nil for ImplGlobal
	// Key2Type is set for ImplHash2.
	Key2Type *sema.Type

	EntryWords   int
	Template     []uint64
	Sync         bool
	AddrShift    uint // address-keyed groups pre-shift keys by this
	MaxKeys      uint64
	ShadowFactor float64
	// Cold marks a group split out by profile-guided coalescing: the
	// profile showed its members rarely accessed, so container
	// selection trades speed for memory (page table over shadow).
	Cold    bool
	Members []*Member

	memberByName map[string]*Member
}

// Member returns the group's member for a metadata object name.
func (g *Group) Member(name string) *Member { return g.memberByName[name] }

// MemberNames returns member names in layout order.
func (g *Group) MemberNames() []string {
	out := make([]string, len(g.Members))
	for i, m := range g.Members {
		out[i] = m.Meta.Name
	}
	return out
}

// Layout is the complete metadata layout decision.
type Layout struct {
	Groups []*Group
	// ByMeta maps each metadata object name to its member record.
	ByMeta map[string]*Member
}

// widthClasses are the field widths that never straddle a word boundary
// under power-of-two strides.
var widthClasses = [...]uint{1, 2, 4, 8, 16, 32, 64}

func roundWidth(w uint) uint {
	for _, c := range widthClasses {
		if w <= c {
			return c
		}
	}
	return 64
}

func bitsForDomain(d int64) uint {
	b := uint(1)
	for int64(1)<<b < d {
		b++
	}
	return b
}

// scalarWidth picks the packed field width for a scalar member.
func scalarWidth(t *sema.Type) (width uint, signed bool) {
	signed = t.Prim <= ast.Int64 // int8..int64 are signed
	width = uint(t.Bits())
	if !signed && t.Domain > 0 {
		if w := roundWidth(bitsForDomain(t.Domain)); w < width {
			width = w
		}
	}
	return width, signed
}

// keySig builds the coalescing signature: groups merge when their first
// key type matches (§5.2 key-type based coalescing). Unkeyed objects
// share the global signature; maps whose second key dimension is
// unbounded cannot fold it into the entry and group by both key types.
func keySig(m *sema.MetaObj) string {
	if !m.IsMap() {
		return "<global>"
	}
	var sb strings.Builder
	sb.WriteString(m.Keys[0].Name)
	for _, k := range m.Keys[1:] {
		if k.Domain <= 0 {
			sb.WriteString("|")
			sb.WriteString(k.Name)
		}
	}
	return sb.String()
}

// TestPerturbCoalescedTemplates is a test-only hook for the conformance
// shrinker's self-test: when set, the initial-state template of every
// keyed group holding two or more coalesced members gets its low bit
// flipped. Such groups exist only when Coalesce is on, so the flip makes
// DefaultOptions disagree with DSOnlyOptions/NaiveOptions on any analysis
// whose coalesced default state matters — a deliberate, deterministic
// semantic-drift bug for the differential harness to catch and shrink.
// Never set outside tests.
var TestPerturbCoalescedTemplates bool

// TestPerturbAdaptedTemplates is the adaptive counterpart: when set,
// every keyed group of a profile-carrying compile gets its template low
// bit flipped, so an adapted analysis deterministically disagrees with
// its static reference wherever the default metadata state matters.
// The adaptive conformance axis and its shrinker leg must catch it.
// Never set outside tests.
var TestPerturbAdaptedTemplates bool

// buildLayout runs metadata coalescing (§5.2) and data-structure
// selection (§5.3).
func buildLayout(info *sema.Info, opts Options) (*Layout, error) {
	lay := &Layout{ByMeta: make(map[string]*Member)}

	// 1. Partition metadata objects into groups.
	type bucket struct {
		sig   string
		metas []*sema.MetaObj
		cold  bool // profile-guided: rarely accessed members
	}
	var buckets []*bucket
	bySig := make(map[string]*bucket)
	for _, m := range info.MetaOrder {
		sig := keySig(m)
		if !opts.Coalesce && sig != "<global>" {
			// Without coalescing every keyed object is its own group.
			buckets = append(buckets, &bucket{sig: sig + "#" + m.Name, metas: []*sema.MetaObj{m}})
			continue
		}
		b := bySig[sig]
		if b == nil {
			b = &bucket{sig: sig}
			bySig[sig] = b
			buckets = append(buckets, b)
		}
		b.metas = append(b.metas, m)
	}

	// 1b. Profile-guided coalescing (§3.2.1 future work): split members
	// the profiling run showed are cold out of hot groups, so hot
	// accesses stop paying for metadata they rarely touch.
	if opts.Profile != nil && opts.Coalesce {
		var split []*bucket
		for _, b := range buckets {
			if len(b.metas) < 2 || b.sig == "<global>" {
				split = append(split, b)
				continue
			}
			names := make([]string, len(b.metas))
			byName := make(map[string]*sema.MetaObj, len(b.metas))
			for i, m := range b.metas {
				names[i] = m.Name
				byName[m.Name] = m
			}
			hot, cold := partitionByProfile(opts.Profile, names, func(n string) uint64 {
				return opts.Profile.Counts[n]
			})
			if len(hot) == 0 || len(cold) == 0 {
				split = append(split, b)
				continue
			}
			hb := &bucket{sig: b.sig}
			for _, n := range hot {
				hb.metas = append(hb.metas, byName[n])
			}
			cb := &bucket{sig: b.sig + "#cold", cold: true}
			for _, n := range cold {
				cb.metas = append(cb.metas, byName[n])
			}
			split = append(split, hb, cb)
		}
		buckets = split
	}

	// 2. Lay out each group's entry and pick its container.
	for _, b := range buckets {
		g := &Group{ID: len(lay.Groups), Cold: b.cold, memberByName: make(map[string]*Member)}
		var bitCursor uint

		for _, mo := range b.metas {
			mem := &Member{Meta: mo, GroupID: g.ID}
			if mo.Sync {
				g.Sync = true
			}

			// Inner bounded key dimensions fold into the entry.
			var unboundedInner []*sema.Type
			if mo.IsMap() {
				for _, k := range mo.Keys[1:] {
					if k.Domain > 0 {
						mem.InnerDomains = append(mem.InnerDomains, k.Domain)
					} else {
						unboundedInner = append(unboundedInner, k)
					}
				}
				if len(unboundedInner) > 1 {
					return nil, fmt.Errorf("compiler: %s has more than two unbounded key dimensions", mo.Name)
				}
				if len(unboundedInner) == 1 {
					g.Key2Type = unboundedInner[0]
				}
			}

			// Leaf width.
			var leafBits uint
			switch mo.Kind {
			case sema.ScalarValue:
				w, signed := scalarWidth(mo.Scalar)
				mem.Width, mem.Signed = w, signed
				mem.UnivInit = mo.Universe
				leafBits = w
			case sema.SetValue:
				mem.IsSet = 1
				dom := mo.Elem.Domain
				useBits := opts.SmartSelect && dom > 0 && meta.BitWords(dom)*8 <= opts.BitSetMaxBytes
				if useBits {
					mem.Repr = SetBitVec
					mem.SetWords = meta.BitWords(dom)
					mem.SetDomain = dom
					leafBits = uint(mem.SetWords) * 64
				} else {
					mem.Repr = SetTree
					mem.SetWords = 1 // handle word
					mem.SetDomain = dom
					leafBits = 64
				}
				mem.SetUniv = mo.Universe
			}

			// Stride for inner dims: round leaf to a width class (or word
			// multiples for >64-bit leaves) so strided fields never straddle.
			stride := leafBits
			if stride <= 64 {
				stride = roundWidth(stride)
			} else {
				stride = (stride + 63) &^ 63
			}
			total := stride
			for _, d := range mem.InnerDomains {
				total *= uint(d)
			}
			// Stride vector: innermost dimension steps by `stride`, outer
			// dimensions by the product of inner extents.
			mem.InnerStride = make([]uint, len(mem.InnerDomains))
			acc := stride
			for i := len(mem.InnerDomains) - 1; i >= 0; i-- {
				mem.InnerStride[i] = acc
				acc *= uint(mem.InnerDomains[i])
			}

			// Placement: sub-word scalars pack into the current word when
			// they fit without straddling; larger members align to a word.
			if total <= 64 && mem.IsSet == 0 && len(mem.InnerDomains) == 0 {
				if bitCursor%64+total > 64 {
					bitCursor = (bitCursor + 63) &^ 63
				}
				mem.BitOff = bitCursor
				bitCursor += total
			} else {
				bitCursor = (bitCursor + 63) &^ 63
				if mem.IsSet == 1 && len(mem.InnerDomains) == 0 {
					mem.WordOff = int(bitCursor / 64)
				}
				mem.BitOff = bitCursor
				if mem.IsSet == 1 {
					mem.WordOff = int(bitCursor / 64)
				}
				bitCursor += total
			}

			g.Members = append(g.Members, mem)
			g.memberByName[mo.Name] = mem
			lay.ByMeta[mo.Name] = mem
		}

		g.EntryWords = int((bitCursor + 63) / 64)
		if g.EntryWords == 0 {
			g.EntryWords = 1
		}

		// Template: universe-initialized members start all-ones.
		g.Template = make([]uint64, g.EntryWords)
		for _, mem := range g.Members {
			fillTemplate(g.Template, mem)
		}

		// Container selection.
		first := b.metas[0]
		switch {
		case !first.IsMap():
			g.Impl = ImplGlobal
		case g.Key2Type != nil:
			g.Impl = ImplHash2
			g.KeyType = first.Keys[0]
		default:
			g.KeyType = first.Keys[0]
			kt := g.KeyType
			switch {
			case !opts.SmartSelect:
				g.Impl = ImplHash
				if kt.Prim == ast.Pointer {
					g.AddrShift = opts.granShift()
				}
			case kt.Domain > 0 && kt.Domain <= opts.ArrayMapMaxKeys:
				g.Impl = ImplArray
			case kt.Prim == ast.Pointer:
				g.AddrShift = opts.granShift()
				g.MaxKeys = opts.AddrSpace >> g.AddrShift
				g.ShadowFactor = float64(g.EntryWords*8) / float64(opts.Granularity)
				// Cold groups (profile-guided split) trade the offset
				// shadow's speed for the page table's memory efficiency —
				// §5.3's trade-off, decided with profile knowledge.
				if g.ShadowFactor > opts.ShadowFactorThreshold || b.cold {
					g.Impl = ImplPageTable
				} else {
					g.Impl = ImplShadow
				}
			default:
				g.Impl = ImplHash
			}
		}
		if TestPerturbCoalescedTemplates && g.KeyType != nil && len(g.Members) >= 2 {
			g.Template[0] ^= 1
		}
		if TestPerturbAdaptedTemplates && opts.Profile != nil && g.KeyType != nil {
			g.Template[0] ^= 1
		}
		lay.Groups = append(lay.Groups, g)
	}

	sort.SliceStable(lay.Groups, func(i, j int) bool { return lay.Groups[i].ID < lay.Groups[j].ID })
	return lay, nil
}

// fillTemplate writes a member's initial state into the group template.
func fillTemplate(tmpl []uint64, mem *Member) {
	copies := uint(1)
	for _, d := range mem.InnerDomains {
		copies *= uint(d)
	}
	stride := uint(64)
	if len(mem.InnerStride) > 0 {
		stride = mem.InnerStride[len(mem.InnerStride)-1]
	}
	for c := uint(0); c < copies; c++ {
		off := mem.BitOff + c*stride
		if mem.IsSet == 1 {
			if mem.SetUniv && mem.Repr == SetBitVec {
				w := off / 64
				words := tmpl[w : w+uint(mem.SetWords)]
				meta.BitFillUniverse(words, mem.SetDomain)
			}
			// Tree handles stay 0; materialization consults SetUniv.
		} else if mem.UnivInit {
			meta.StoreField(tmpl, off, mem.Width, ^uint64(0))
		}
	}
}
