package compiler

import (
	"strings"
	"testing"
)

// adaptSrc mirrors the msan shape: a hot shadow map and a cold sidecar
// sharing the address key — the group the adaptive pass splits.
const adaptSrc = `
address := pointer
size := int64
v := int8
label = universe::map(address, v)
sizes = map(address, size)
onMalloc(address p, size n) {
    label.set(p, 0, n);
    sizes[p] = n;
}
onLoad(address p) {
    alda_assert(label[p], 0, "uninit");
}
insert after func malloc call onMalloc($r, $1)
insert after LoadInst call onLoad($1)
`

func skewedProfile() *Profile {
	return &Profile{Counts: map[string]uint64{"label": 1000, "sizes": 2}}
}

func TestAdaptOptionsColdSplit(t *testing.T) {
	base := DefaultOptions()
	res := base.AdaptOptions(skewedProfile())
	if !res.Changed {
		t.Fatalf("skewed profile must change the options:\n%s", res.DecisionLog())
	}
	if res.Opts.Profile == nil {
		t.Fatal("adapted options must carry the canonical profile")
	}
	if res.Opts.Granularity != base.Granularity {
		t.Fatalf("adaptation changed granularity %d -> %d", base.Granularity, res.Opts.Granularity)
	}
	if res.Opts.ProfileCollect {
		t.Fatal("adapted options must not keep collecting")
	}
	if res.Opts.Fingerprint() == base.Fingerprint() {
		t.Fatal("adapted options must fingerprint differently from static")
	}

	// The adapted compile splits the cold sidecar into its own group,
	// marked Cold and rendered in the plan.
	a, err := Compile(adaptSrc, res.Opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Layout.Groups) != 2 {
		t.Fatalf("adapted groups = %d, want 2:\n%s", len(a.Layout.Groups), a.Plan())
	}
	var coldGroups int
	for _, g := range a.Layout.Groups {
		if g.Cold {
			coldGroups++
			if g.Member("sizes") == nil {
				t.Errorf("cold group holds %v, want sizes", g.MemberNames())
			}
		}
	}
	if coldGroups != 1 {
		t.Fatalf("cold groups = %d, want 1", coldGroups)
	}
	if !strings.Contains(a.Plan(), "cold=profile-split") {
		t.Errorf("plan does not render the cold split:\n%s", a.Plan())
	}
}

// TestAdaptOptionsDeterministic: same inputs, same fingerprint, same
// decision log — the property that makes adapted compiles cacheable and
// hot-swaps journal-replayable.
func TestAdaptOptionsDeterministic(t *testing.T) {
	base := DefaultOptions()
	r1 := base.AdaptOptions(skewedProfile())
	r2 := base.AdaptOptions(skewedProfile())
	if r1.Opts.Fingerprint() != r2.Opts.Fingerprint() {
		t.Error("fingerprints differ across identical adaptations")
	}
	if r1.DecisionLog() != r2.DecisionLog() {
		t.Errorf("decision logs differ:\n--- 1 ---\n%s--- 2 ---\n%s", r1.DecisionLog(), r2.DecisionLog())
	}
	// Equivalent profile with an explicit zero canonicalizes identically.
	withZero := skewedProfile()
	withZero.Counts["ghost"] = 0
	if r3 := base.AdaptOptions(withZero); r3.Opts.Fingerprint() != r1.Opts.Fingerprint() {
		t.Error("explicit zero count changed the adapted fingerprint")
	}
}

func TestAdaptOptionsNoChange(t *testing.T) {
	base := DefaultOptions()
	cases := map[string]*Profile{
		"nil":       nil,
		"empty":     {Counts: map[string]uint64{}},
		"all-zero":  {Counts: map[string]uint64{"a": 0, "b": 0}},
		"all-equal": {Counts: map[string]uint64{"label": 100, "sizes": 100}},
		"all-hot":   {Counts: map[string]uint64{"label": 100, "sizes": 10}},
	}
	for name, p := range cases {
		res := base.AdaptOptions(p)
		if res.Changed {
			t.Errorf("%s: Changed=true, want false:\n%s", name, res.DecisionLog())
		}
		if res.Opts.Fingerprint() != base.Fingerprint() {
			t.Errorf("%s: unchanged adaptation must keep the static fingerprint", name)
		}
		if len(res.Decisions) == 0 {
			t.Errorf("%s: no decisions logged", name)
		}
	}
	// Without coalescing there is nothing to re-select, however skewed
	// the profile.
	if res := DSOnlyOptions().AdaptOptions(skewedProfile()); res.Changed {
		t.Errorf("dsonly adaptation must be a no-op:\n%s", res.DecisionLog())
	}
	// A profiling-quantum configuration still clears ProfileCollect.
	collect := base
	collect.ProfileCollect = true
	if res := collect.AdaptOptions(nil); res.Opts.ProfileCollect {
		t.Error("AdaptOptions must clear ProfileCollect")
	}
}

// TestAdaptDecisionLogGolden pins the rendered decision log for a fixed
// profile; the harness prints this trail after adaptive sweeps, so its
// exact shape is part of the deterministic output contract.
func TestAdaptDecisionLogGolden(t *testing.T) {
	res := DefaultOptions().AdaptOptions(skewedProfile())
	want := `adaptation: changed=true
  veto       granularity    verdict safety: adaptation never changes granularity (stays 8B)
  keep-hot   label          1000 accesses >= peak 1000 / 16
  split-cold sizes          2 accesses < peak 1000 / 16
  re-select  layout         1 cold member(s): profile-guided cold split and container re-selection enabled
`
	if got := res.DecisionLog(); got != want {
		t.Errorf("decision log drifted\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestProfileMatchesAnalysis(t *testing.T) {
	a, err := Compile(adaptSrc, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	good := &Profile{Counts: map[string]uint64{"label": 5, "sizes": 1}}
	if err := good.MatchesAnalysis(a); err != nil {
		t.Errorf("matching profile rejected: %v", err)
	}
	var nilP *Profile
	if err := nilP.MatchesAnalysis(a); err != nil {
		t.Errorf("nil profile rejected: %v", err)
	}
	stale := &Profile{Counts: map[string]uint64{"label": 5, "lockset": 9, "epoch": 1}}
	err = stale.MatchesAnalysis(a)
	if err == nil {
		t.Fatal("stale profile accepted")
	}
	if !strings.Contains(err.Error(), "epoch, lockset") {
		t.Errorf("stale members not listed sorted: %v", err)
	}
}
