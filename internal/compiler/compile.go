package compiler

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/access"
	"repro/internal/lang/ast"
	"repro/internal/lang/parser"
	"repro/internal/lang/sema"
)

// MatchKind classifies an insertion point after lowering.
type MatchKind int

// Lowered insertion-point kinds.
const (
	MatchLoad MatchKind = iota
	MatchStore
	MatchAlloca
	MatchCondBr
	MatchAnyCall
	MatchCallee // specific function name (library or user)
	MatchBinOp
	MatchCmp
	MatchLock
	MatchUnlock
	MatchSpawn
	MatchJoin
	MatchRet
	MatchProgramStart
	MatchProgramEnd
)

var matchNames = map[MatchKind]string{
	MatchLoad: "LoadInst", MatchStore: "StoreInst", MatchAlloca: "AllocaInst",
	MatchCondBr: "BranchInst", MatchAnyCall: "CallInst", MatchCallee: "func",
	MatchBinOp: "BinOpInst", MatchCmp: "CmpInst", MatchLock: "LockInst",
	MatchUnlock: "UnlockInst", MatchSpawn: "SpawnInst", MatchJoin: "JoinInst",
	MatchRet: "RetInst", MatchProgramStart: "ProgramStart", MatchProgramEnd: "ProgramEnd",
}

func (k MatchKind) String() string { return matchNames[k] }

// Rule is a lowered insertion declaration, ready for the instrumenter.
type Rule struct {
	Kind        MatchKind
	Callee      string // MatchCallee
	After       bool
	HandlerID   int
	HandlerName string
	Args        []ast.CallArg
	HasResult   bool
	UsesMeta    bool // any $X.m argument
}

// FusedPart names one sub-handler of a fused hook and maps its
// parameters onto the fused rule's deduplicated argument list.
type FusedPart struct {
	HandlerName string
	ArgIdx      []int // parameter i reads fused arg ArgIdx[i]
}

// FusedSpec describes one fused handler: its parts compile together in
// one hstate, sharing entry/value CSE slots and a single sync-lock
// section.
type FusedSpec struct {
	Name  string
	Parts []FusedPart
}

// Analysis is a compiled ALDA analysis: the immutable compilation plan.
// Instantiate per run with NewRuntime and instrument programs with
// package instrument.
type Analysis struct {
	Info   *sema.Info
	Access *access.Result
	Layout *Layout
	Opts   Options
	Rules  []Rule

	// HandlerIDs maps handler names to their table index.
	HandlerIDs map[string]int

	// Fused lists the fused handlers; HandlerIDs at or beyond
	// len(Info.HandlerOrder) index into this list.
	Fused []FusedSpec

	// NeedShadow reports whether instrumented programs need local
	// metadata (shadow register) tracking.
	NeedShadow bool

	// Externals supplies Go implementations for external function calls;
	// set before NewRuntime.
	Externals map[string]ExternalFn

	// SourceLOC counts non-blank, non-comment source lines (Table 4).
	SourceLOC int

	// Stats records per-stage compile times and decision counts. Times
	// are volatile; counts are deterministic per (source, Options).
	Stats CompileStats

	// memberCounterIdx assigns profile-counter slots when
	// Options.ProfileCollect is set.
	memberCounterIdx map[string]int
}

// Compile parses, checks and compiles an ALDA source text.
func Compile(src string, opts Options) (*Analysis, error) {
	t0 := time.Now()
	prog, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	parseNS := int64(time.Since(t0))
	traceStage("parse", t0)
	a, err := CompileProgram(prog, opts)
	if err != nil {
		return nil, err
	}
	a.Stats.ParseNS = parseNS
	a.SourceLOC = CountLOC(src)
	return a, nil
}

// CompileProgram compiles a parsed program.
func CompileProgram(prog *ast.Program, opts Options) (*Analysis, error) {
	t := time.Now()
	info, err := sema.Check(prog)
	if err != nil {
		return nil, err
	}
	semaNS := int64(time.Since(t))
	traceStage("sema", t)

	t = time.Now()
	acc := access.Analyze(info)
	accessNS := int64(time.Since(t))
	traceStage("access", t)

	t = time.Now()
	lay, err := buildLayout(info, opts)
	if err != nil {
		return nil, err
	}
	layoutNS := int64(time.Since(t))
	traceStage("layout", t)
	a := &Analysis{
		Info:       info,
		Access:     acc,
		Layout:     lay,
		Opts:       opts,
		HandlerIDs: make(map[string]int),
		Externals:  make(map[string]ExternalFn),
	}
	for i, h := range info.HandlerOrder {
		a.HandlerIDs[h.Name] = i
	}
	if opts.ProfileCollect {
		a.memberCounterIdx = make(map[string]int, len(info.MetaOrder))
		for i, m := range info.MetaOrder {
			a.memberCounterIdx[m.Name] = i
		}
	}
	t = time.Now()
	if err := a.lowerRules(); err != nil {
		return nil, err
	}
	if err := a.checkShadowConflicts(); err != nil {
		return nil, err
	}
	lowerNS := int64(time.Since(t))
	traceStage("lower", t)

	var fuseNS int64
	if opts.FuseHandlers {
		t = time.Now()
		a.fuseRules()
		fuseNS = int64(time.Since(t))
		traceStage("fuse", t)
	}

	coalesced := 0
	for _, g := range lay.Groups {
		if len(g.Members) > 1 {
			coalesced += len(g.Members)
		}
	}
	a.Stats = CompileStats{
		SemaNS: semaNS, AccessNS: accessNS, LayoutNS: layoutNS,
		LowerNS: lowerNS, FuseNS: fuseNS,
		Groups: len(lay.Groups), Coalesced: coalesced,
		FusedHooks: len(a.Fused), Rules: len(a.Rules),
	}
	return a, nil
}

// checkShadowConflicts rejects combinations where two handlers with
// results attach to the same insertion point: an instruction has one
// shadow register, so the second handler's return value would silently
// overwrite the first's local metadata (e.g. combining MSan's labels
// with taint tracking's taints). The paper's combined analyses never
// include two local-metadata producers; we make the restriction a
// compile error instead of a silent misbehavior.
func (a *Analysis) checkShadowConflicts() error {
	type pointKey struct {
		kind   MatchKind
		callee string
		after  bool
	}
	producers := make(map[pointKey]string)
	for i := range a.Rules {
		r := &a.Rules[i]
		if !r.HasResult {
			continue
		}
		k := pointKey{r.Kind, r.Callee, r.After}
		if prev, dup := producers[k]; dup {
			return fmt.Errorf("compiler: handlers %s and %s both return local metadata at the same insertion point (%s); an instruction has a single shadow register — combine at most one shadow-producing analysis per point",
				prev, r.HandlerName, r.Kind)
		}
		producers[k] = r.HandlerName
	}
	return nil
}

// argKey identifies a call-arg ignoring source position, for fusion
// deduplication.
type argKey struct {
	kind   ast.CallArgKind
	index  int
	meta   bool
	sizeof bool
}

func keyOf(a ast.CallArg) argKey {
	return argKey{kind: a.Kind, index: a.Index, meta: a.Meta, sizeof: a.Sizeof}
}

// fuseRules merges rules attached to the same insertion point into one
// fused rule per point. Rules with results (their return value feeds a
// shadow register) and rules using $p (site-dependent expansion) stay
// standalone.
func (a *Analysis) fuseRules() {
	type pointKey struct {
		kind   MatchKind
		callee string
		after  bool
	}
	groups := make(map[pointKey][]int)
	var order []pointKey
	fusable := func(r *Rule) bool {
		if r.HasResult {
			return false
		}
		for _, arg := range r.Args {
			if arg.Kind == ast.ArgAll {
				return false
			}
		}
		return true
	}
	for i := range a.Rules {
		if !fusable(&a.Rules[i]) {
			continue
		}
		k := pointKey{a.Rules[i].Kind, a.Rules[i].Callee, a.Rules[i].After}
		if len(groups[k]) == 0 {
			order = append(order, k)
		}
		groups[k] = append(groups[k], i)
	}

	replaced := make(map[int]bool)
	fusedByFirst := make(map[int]Rule)
	for _, k := range order {
		idxs := groups[k]
		if len(idxs) < 2 {
			continue
		}
		var args []ast.CallArg
		seen := make(map[argKey]int)
		spec := FusedSpec{}
		names := make([]string, 0, len(idxs))
		usesMeta := false
		for _, ri := range idxs {
			r := &a.Rules[ri]
			part := FusedPart{HandlerName: r.HandlerName}
			for _, arg := range r.Args {
				key := keyOf(arg)
				pos, ok := seen[key]
				if !ok {
					pos = len(args)
					seen[key] = pos
					args = append(args, arg)
				}
				part.ArgIdx = append(part.ArgIdx, pos)
			}
			if r.UsesMeta {
				usesMeta = true
			}
			spec.Parts = append(spec.Parts, part)
			names = append(names, r.HandlerName)
			replaced[ri] = true
		}
		spec.Name = "fused(" + strings.Join(names, "+") + ")"
		fusedID := len(a.Info.HandlerOrder) + len(a.Fused)
		a.Fused = append(a.Fused, spec)
		fusedByFirst[idxs[0]] = Rule{
			Kind: k.kind, Callee: k.callee, After: k.after,
			HandlerID: fusedID, HandlerName: spec.Name,
			Args: args, UsesMeta: usesMeta,
		}
	}

	if len(fusedByFirst) == 0 {
		return
	}
	var out []Rule
	for i := range a.Rules {
		if fr, ok := fusedByFirst[i]; ok {
			out = append(out, fr)
			continue
		}
		if replaced[i] {
			continue
		}
		out = append(out, a.Rules[i])
	}
	a.Rules = out
}

func (a *Analysis) lowerRules() error {
	for _, d := range a.Info.Inserts {
		h := a.Info.Handlers[d.Handler]
		r := Rule{
			After:       d.After,
			HandlerID:   a.HandlerIDs[d.Handler],
			HandlerName: d.Handler,
			Args:        d.Args,
			HasResult:   h.Result != nil,
		}
		for _, arg := range d.Args {
			if arg.Meta {
				r.UsesMeta = true
			}
		}
		if d.PointKind == ast.FuncPoint {
			r.Kind = MatchCallee
			r.Callee = d.Point
		} else {
			switch d.Point {
			case "LoadInst":
				r.Kind = MatchLoad
			case "StoreInst":
				r.Kind = MatchStore
			case "AllocaInst":
				r.Kind = MatchAlloca
			case "BranchInst":
				r.Kind = MatchCondBr
			case "CallInst":
				r.Kind = MatchAnyCall
			case "BinOpInst":
				r.Kind = MatchBinOp
			case "CmpInst":
				r.Kind = MatchCmp
			case "LockInst":
				r.Kind = MatchLock
			case "UnlockInst":
				r.Kind = MatchUnlock
			case "SpawnInst":
				r.Kind = MatchSpawn
			case "JoinInst":
				r.Kind = MatchJoin
			case "RetInst":
				r.Kind = MatchRet
			case "ProgramStart":
				r.Kind = MatchProgramStart
			case "ProgramEnd":
				r.Kind = MatchProgramEnd
			default:
				return fmt.Errorf("compiler: unknown insertion point %q", d.Point)
			}
		}
		if r.UsesMeta || r.HasResult {
			a.NeedShadow = true
		}
		a.Rules = append(a.Rules, r)
	}
	return nil
}

// CountLOC counts non-blank, non-comment lines the way Table 4 does.
func CountLOC(src string) int {
	n := 0
	inBlock := false
	for _, line := range strings.Split(src, "\n") {
		s := strings.TrimSpace(line)
		if inBlock {
			if i := strings.Index(s, "*/"); i >= 0 {
				inBlock = false
				s = strings.TrimSpace(s[i+2:])
			} else {
				continue
			}
		}
		if i := strings.Index(s, "//"); i >= 0 {
			s = strings.TrimSpace(s[:i])
		}
		if i := strings.Index(s, "/*"); i >= 0 {
			rest := s[i+2:]
			if !strings.Contains(rest, "*/") {
				inBlock = true
			}
			s = strings.TrimSpace(s[:i])
		}
		if s != "" {
			n++
		}
	}
	return n
}

// Plan renders the compilation plan — the aldaexplain output: groups,
// container choices, shadow factors, entry layouts and per-handler CSE
// slots.
func (a *Analysis) Plan() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ALDAcc plan (coalesce=%v cse=%v select=%v granularity=%dB engine=%s)\n",
		a.Opts.Coalesce, a.Opts.CSE, a.Opts.SmartSelect, a.Opts.Granularity, a.Opts.Engine)
	for _, g := range a.Layout.Groups {
		key := "<none>"
		if g.KeyType != nil {
			key = g.KeyType.Name
			if g.Key2Type != nil {
				key += "×" + g.Key2Type.Name
			}
		}
		fmt.Fprintf(&b, "group %d: impl=%s key=%s entry=%dB sync=%v", g.ID, g.Impl, key, g.EntryWords*8, g.Sync)
		if g.Impl == ImplShadow || g.Impl == ImplPageTable {
			fmt.Fprintf(&b, " shadow-factor=%.2f", g.ShadowFactor)
		}
		if g.Cold {
			b.WriteString(" cold=profile-split")
		}
		b.WriteString("\n")
		for _, m := range g.Members {
			if m.IsSet == 1 {
				fmt.Fprintf(&b, "  %s: set repr=%s domain=%d words=%d off=w%d universe=%v\n",
					m.Meta.Name, m.Repr, m.SetDomain, m.SetWords, m.BitOff/64, m.SetUniv)
			} else {
				fmt.Fprintf(&b, "  %s: scalar width=%d off=b%d signed=%v", m.Meta.Name, m.Width, m.BitOff, m.Signed)
				if len(m.InnerDomains) > 0 {
					fmt.Fprintf(&b, " inner=%v", m.InnerDomains)
				}
				b.WriteString("\n")
			}
		}
	}
	for _, f := range a.Fused {
		names := make([]string, len(f.Parts))
		for i, p := range f.Parts {
			names[i] = p.HandlerName
		}
		fmt.Fprintf(&b, "fused hook: %s (one dispatch, shared lookups and locks)\n",
			strings.Join(names, " + "))
	}
	// Handler access/CSE summary.
	names := make([]string, 0, len(a.Access.PerHandler))
	for n := range a.Access.PerHandler {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		ha := a.Access.PerHandler[n]
		classes := make(map[string]int)
		sites := 0
		for _, s := range ha.Sites {
			sites++
			gid := a.Layout.ByMeta[s.Meta.Name].GroupID
			if len(s.KeyClasses) > 0 && !strings.HasPrefix(s.KeyClasses[0], "!") {
				classes[fmt.Sprintf("g%d|%s", gid, s.KeyClasses[0])]++
			}
		}
		saved := 0
		for _, c := range classes {
			if c > 1 {
				saved += c - 1
			}
		}
		fmt.Fprintf(&b, "handler %s: %d access sites, %d lookups saved by CSE+coalescing\n", n, sites, saved)
	}
	return b.String()
}
