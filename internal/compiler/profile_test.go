package compiler_test

import (
	"strings"
	"testing"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/workloads"
)

// msanLike has a hot shadow map and a cold allocation-size sidecar with
// the same key type — the §3.2.1 false-grouping case.
const msanLike = `
address := pointer
size := int64
v := int8
label = universe::map(address, v)
sizes = map(address, size)
onMalloc(address p, size n) {
    label.set(p, 0, n);
    sizes[p] = n;
}
onLoad(address p) {
    alda_assert(label[p], 0, "uninit");
}
insert after func malloc call onMalloc($r, $1)
insert after LoadInst call onLoad($1)
`

func TestProfileGuidedCoalescing(t *testing.T) {
	base, err := compiler.Compile(msanLike, compiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Statically both maps share the address key: one group.
	if len(base.Layout.Groups) != 1 {
		t.Fatalf("static groups = %d, want 1", len(base.Layout.Groups))
	}

	train := workloads.MustBuild("libquantum", workloads.SizeTiny)
	prof, err := core.CollectProfile(base, train, core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if prof.Counts["label"] == 0 {
		t.Fatalf("profile missing hot member: %v", prof.Counts)
	}
	if prof.Counts["label"] <= prof.Counts["sizes"]*16 {
		t.Fatalf("expected label ≫ sizes: %v", prof.Counts)
	}
	if !strings.Contains(prof.String(), "label") {
		t.Error("profile rendering broken")
	}

	pgo, err := core.RecompileWithProfile(base, prof)
	if err != nil {
		t.Fatal(err)
	}
	// The cold sizes map splits into its own group.
	if len(pgo.Layout.Groups) != 2 {
		t.Fatalf("pgo groups = %d, want 2:\n%s", len(pgo.Layout.Groups), pgo.Plan())
	}
	var hotWords int
	for _, g := range pgo.Layout.Groups {
		if g.Member("label") != nil {
			hotWords = g.EntryWords
		}
	}
	if hotWords != 1 {
		t.Fatalf("hot group entry = %d words, want 1 (sizes split out)", hotWords)
	}

	// Behavior must be identical with and without the profile.
	for _, a := range []*compiler.Analysis{base, pgo} {
		rt, err := a.NewRuntime()
		if err != nil {
			t.Fatal(err)
		}
		inst := mustInstrument(t, a)
		m := mustMachine(t, inst, a.NeedShadow)
		m.Handlers = rt.Handlers()
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Reports) != 0 {
			t.Fatalf("reports: %v", res.Reports)
		}
	}
}

func TestProfileHotWhenAllEqual(t *testing.T) {
	// Equal counts: nothing splits.
	base, err := compiler.Compile(msanLike, compiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	prof := &compiler.Profile{Counts: map[string]uint64{"label": 100, "sizes": 100}}
	pgo, err := core.RecompileWithProfile(base, prof)
	if err != nil {
		t.Fatal(err)
	}
	if len(pgo.Layout.Groups) != 1 {
		t.Fatalf("equal-profile groups = %d, want 1", len(pgo.Layout.Groups))
	}
}
