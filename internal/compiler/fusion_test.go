package compiler_test

import (
	"strings"
	"testing"

	"repro/internal/compiler"
)

const twoAnalyses = `
address := pointer
v := int64
seenA = map(address, v)
aOnLoad(address p) { seenA[p] = seenA[p] + 1; }
insert after LoadInst call aOnLoad($1)

addressB := pointer
w := int64
seenB = map(address, w)
bOnLoad(address q) { seenB[q] = seenB[q] + 2; alda_assert(seenA[q] > 0, 1, "order"); }
insert after LoadInst call bOnLoad($1)
`

func TestFusionMergesSamePointRules(t *testing.T) {
	a, err := compiler.Compile(twoAnalyses, compiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Fused) != 1 {
		t.Fatalf("fused specs = %d, want 1", len(a.Fused))
	}
	if len(a.Rules) != 1 {
		t.Fatalf("rules after fusion = %d, want 1", len(a.Rules))
	}
	r := a.Rules[0]
	// $1 appears in both parts but the fused arg list dedups it.
	if len(r.Args) != 1 {
		t.Fatalf("fused args = %d, want 1 (deduplicated $1)", len(r.Args))
	}
	if r.HandlerID < len(a.Info.HandlerOrder) {
		t.Fatalf("fused rule must use a fused handler id, got %d", r.HandlerID)
	}
	spec := a.Fused[0]
	if len(spec.Parts) != 2 || spec.Parts[0].HandlerName != "aOnLoad" || spec.Parts[1].HandlerName != "bOnLoad" {
		t.Fatalf("parts: %+v", spec.Parts)
	}
	if spec.Parts[0].ArgIdx[0] != 0 || spec.Parts[1].ArgIdx[0] != 0 {
		t.Fatalf("arg mapping: %+v", spec.Parts)
	}
	if !strings.Contains(a.Plan(), "fused hook") {
		t.Error("plan does not mention fusion")
	}
}

func TestFusionPreservesOrderAndSemantics(t *testing.T) {
	// bOnLoad asserts aOnLoad already ran for this event (declaration
	// order), and the fused execution must satisfy it — both with and
	// without fusion.
	for _, fuse := range []bool{true, false} {
		opts := compiler.DefaultOptions()
		opts.FuseHandlers = fuse
		res := runSrc(t, twoAnalyses, opts, loadsProg(5), nil)
		if len(res.Reports) != 0 {
			t.Fatalf("fuse=%v: %d reports", fuse, len(res.Reports))
		}
	}
}

func TestFusionSkipsResultHandlers(t *testing.T) {
	src := `
address := pointer
label := int64
label mark(address p) { return 7; }
count(address p) { }
also(address p) { }
insert after LoadInst call mark($1)
insert after LoadInst call count($1)
insert after LoadInst call also($1)
`
	a, err := compiler.Compile(src, compiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// count+also fuse; mark (has a result) stays standalone.
	if len(a.Fused) != 1 || len(a.Fused[0].Parts) != 2 {
		t.Fatalf("fused: %+v", a.Fused)
	}
	if len(a.Rules) != 2 {
		t.Fatalf("rules = %d, want 2 (mark + fused)", len(a.Rules))
	}
}

func TestFusionSharedLookupsReduceContainerTraffic(t *testing.T) {
	run := func(fuse bool) uint64 {
		opts := compiler.DefaultOptions()
		opts.FuseHandlers = fuse
		a, err := compiler.Compile(twoAnalyses, opts)
		if err != nil {
			t.Fatal(err)
		}
		rt, err := a.NewRuntime()
		if err != nil {
			t.Fatal(err)
		}
		inst := mustInstrument(t, a)
		m := mustMachine(t, inst, a.NeedShadow)
		m.Handlers = rt.Handlers()
		if _, err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return rt.ContainerLookups()
	}
	fused := run(true)
	unfused := run(false)
	if fused >= unfused {
		t.Fatalf("fusion did not reduce container lookups: %d vs %d", fused, unfused)
	}
}

// Robustness: the compiler must fail cleanly — never panic — on
// arbitrary corruptions of real analysis sources.
func TestCompilerNeverPanicsOnMutatedSources(t *testing.T) {
	seeds := []string{twoAnalyses, msanLike}
	for _, seed := range seeds {
		for cut := 0; cut < len(seed); cut += 7 {
			// Truncations.
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("panic on truncation at %d: %v", cut, r)
					}
				}()
				_, _ = compiler.Compile(seed[:cut], compiler.DefaultOptions())
			}()
			// Single-byte deletions.
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("panic on deletion at %d: %v", cut, r)
					}
				}()
				_, _ = compiler.Compile(seed[:cut]+seed[cut+1:], compiler.DefaultOptions())
			}()
		}
	}
}
