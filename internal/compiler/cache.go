package compiler

import (
	"container/list"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
)

// Compile-once memoization. The evaluation harness compiles the same
// eight shipped analyses for every figure and every workload cell; with
// parallel cells that multiplies further. Compilation is deterministic
// in (source, options), so one compile per (analysis name, options
// fingerprint) per process suffices. The cache is singleflight: when N
// worker goroutines request the same analysis at once, one compiles and
// the rest wait for its result.
//
// The cache is bounded: a long-running server fields arbitrary
// (analysis, options) combinations from its tenants, so an unbounded
// map is a slow memory leak. Entries live in an LRU keyed by (name,
// options fingerprint); inserting past the capacity evicts the least
// recently used entry. Eviction only drops the cache's reference — a
// goroutine still compiling (or holding) an evicted *Analysis keeps it
// alive and its singleflight group intact, so eviction never blocks or
// re-runs anybody's in-flight compile.
//
// A cached *Analysis is shared — callers must treat it as immutable
// after the build function returns (NewRuntime and instrument.Apply
// already only read it).

// Fingerprint returns a stable encoding of every compilation switch,
// usable as a cache key component. Two Options values with equal
// fingerprints compile identically.
func (o Options) Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "co%t,cse%t,sel%t,fuse%t,pc%t,g%d,sft%g,bits%d,arr%d,as%d,eng%s",
		o.Coalesce, o.CSE, o.SmartSelect, o.FuseHandlers, o.ProfileCollect,
		o.Granularity, o.ShadowFactorThreshold, o.BitSetMaxBytes,
		o.ArrayMapMaxKeys, o.AddrSpace, o.Engine)
	if o.Profile != nil {
		// Canonical digest, not a dump: profiles are caller data of
		// unbounded size, and the fingerprint is recomputed on every
		// cache probe. Zero counts are skipped inside hash(), so
		// equivalent profiles fingerprint identically.
		fmt.Fprintf(&b, ",prof{%016x}", o.Profile.Hash())
	}
	return b.String()
}

type cacheKey struct {
	name string
	fp   string
}

type cacheEntry struct {
	key  cacheKey
	once sync.Once
	a    *Analysis
	err  error
}

// DefaultCompileCacheCap bounds the process-wide compile cache. Sized
// for the full evaluation matrix (8 analyses × 14 ablation legs plus
// combined variants) with headroom; a server tuning for many tenants
// can raise or shrink it with SetCompileCacheCap.
const DefaultCompileCacheCap = 256

var (
	cacheMu      sync.Mutex
	cacheCap     = DefaultCompileCacheCap
	cacheEntries = map[cacheKey]*list.Element{}
	cacheLRU     = list.New() // front = most recently used; values are *cacheEntry
	cacheHits    atomic.Uint64
	cacheMisses  atomic.Uint64
	cacheEvicts  atomic.Uint64
)

// lookupOrInsert returns the live entry for key, creating (and, if over
// capacity, evicting) under the cache lock. The compile itself runs
// outside the lock via the entry's once.
func lookupOrInsert(key cacheKey) *cacheEntry {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if el, ok := cacheEntries[key]; ok {
		cacheLRU.MoveToFront(el)
		return el.Value.(*cacheEntry)
	}
	entry := &cacheEntry{key: key}
	cacheEntries[key] = cacheLRU.PushFront(entry)
	for cacheLRU.Len() > cacheCap {
		oldest := cacheLRU.Back()
		if oldest == nil {
			break
		}
		victim := oldest.Value.(*cacheEntry)
		cacheLRU.Remove(oldest)
		delete(cacheEntries, victim.key)
		cacheEvicts.Add(1)
	}
	return entry
}

// CachedCompile memoizes build under (name, opts.Fingerprint()).
// Concurrent callers with the same key share one compilation.
// Profile-carrying compiles are cached too — the profile is
// canonicalized and hashed into the fingerprint, so the adaptive loop's
// hot-swap recompiles hit the LRU when N cells (or N served jobs) adapt
// to the same profile. Only unhashable profiles (pathologically many
// members) bypass the cache and compile fresh.
func CachedCompile(name string, opts Options, build func() (*Analysis, error)) (*Analysis, error) {
	if !opts.Profile.Hashable() {
		return build()
	}
	entry := lookupOrInsert(cacheKey{name: name, fp: opts.Fingerprint()})
	built := false
	entry.once.Do(func() {
		entry.a, entry.err = build()
		built = true
	})
	if built {
		cacheMisses.Add(1)
	} else {
		cacheHits.Add(1)
	}
	return entry.a, entry.err
}

// SetCompileCacheCap resizes the cache bound (minimum 1), evicting
// least-recently-used entries if the new capacity is already exceeded.
// Returns the previous capacity.
func SetCompileCacheCap(n int) int {
	if n < 1 {
		n = 1
	}
	cacheMu.Lock()
	defer cacheMu.Unlock()
	prev := cacheCap
	cacheCap = n
	for cacheLRU.Len() > cacheCap {
		oldest := cacheLRU.Back()
		victim := oldest.Value.(*cacheEntry)
		cacheLRU.Remove(oldest)
		delete(cacheEntries, victim.key)
		cacheEvicts.Add(1)
	}
	return prev
}

// CompileCacheLen reports the number of live cached entries.
func CompileCacheLen() int {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	return cacheLRU.Len()
}

// CompileCacheStats reports cache hits, misses (compiles performed) and
// LRU evictions since process start or the last reset.
func CompileCacheStats() (hits, misses, evictions uint64) {
	return cacheHits.Load(), cacheMisses.Load(), cacheEvicts.Load()
}

// ResetCompileCache drops all cached analyses and zeroes the counters;
// for tests. The capacity is left as configured.
func ResetCompileCache() {
	cacheMu.Lock()
	cacheEntries = map[cacheKey]*list.Element{}
	cacheLRU.Init()
	cacheMu.Unlock()
	cacheHits.Store(0)
	cacheMisses.Store(0)
	cacheEvicts.Store(0)
}
