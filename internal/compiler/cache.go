package compiler

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Compile-once memoization. The evaluation harness compiles the same
// eight shipped analyses for every figure and every workload cell; with
// parallel cells that multiplies further. Compilation is deterministic
// in (source, options), so one compile per (analysis name, options
// fingerprint) per process suffices. The cache is singleflight: when N
// worker goroutines request the same analysis at once, one compiles and
// the rest wait for its result.
//
// A cached *Analysis is shared — callers must treat it as immutable
// after the build function returns (NewRuntime and instrument.Apply
// already only read it).

// Fingerprint returns a stable encoding of every compilation switch,
// usable as a cache key component. Two Options values with equal
// fingerprints compile identically.
func (o Options) Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "co%t,cse%t,sel%t,fuse%t,pc%t,g%d,sft%g,bits%d,arr%d,as%d,eng%s",
		o.Coalesce, o.CSE, o.SmartSelect, o.FuseHandlers, o.ProfileCollect,
		o.Granularity, o.ShadowFactorThreshold, o.BitSetMaxBytes,
		o.ArrayMapMaxKeys, o.AddrSpace, o.Engine)
	if o.Profile != nil {
		names := make([]string, 0, len(o.Profile.Counts))
		for n := range o.Profile.Counts {
			names = append(names, n)
		}
		sort.Strings(names)
		b.WriteString(",prof{")
		for _, n := range names {
			fmt.Fprintf(&b, "%s=%d;", n, o.Profile.Counts[n])
		}
		b.WriteString("}")
	}
	return b.String()
}

type cacheKey struct {
	name string
	fp   string
}

type cacheEntry struct {
	once sync.Once
	a    *Analysis
	err  error
}

var (
	compileCache sync.Map // cacheKey -> *cacheEntry
	cacheHits    atomic.Uint64
	cacheMisses  atomic.Uint64
)

// CachedCompile memoizes build under (name, opts.Fingerprint()).
// Concurrent callers with the same key share one compilation. Compiles
// that carry a profile bypass the cache: profile-guided recompiles are
// per-training-run one-shots and callers expect a fresh Analysis they
// may wire up further.
func CachedCompile(name string, opts Options, build func() (*Analysis, error)) (*Analysis, error) {
	if opts.Profile != nil {
		return build()
	}
	key := cacheKey{name: name, fp: opts.Fingerprint()}
	e, _ := compileCache.LoadOrStore(key, &cacheEntry{})
	entry := e.(*cacheEntry)
	built := false
	entry.once.Do(func() {
		entry.a, entry.err = build()
		built = true
	})
	if built {
		cacheMisses.Add(1)
	} else {
		cacheHits.Add(1)
	}
	return entry.a, entry.err
}

// CompileCacheStats reports cache hits and misses (compiles performed)
// since process start or the last reset.
func CompileCacheStats() (hits, misses uint64) {
	return cacheHits.Load(), cacheMisses.Load()
}

// ResetCompileCache drops all cached analyses and zeroes the counters;
// for tests.
func ResetCompileCache() {
	compileCache.Range(func(k, _ any) bool {
		compileCache.Delete(k)
		return true
	})
	cacheHits.Store(0)
	cacheMisses.Store(0)
}
