package compiler

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/meta"
	"repro/internal/obs"
)

// traceSink is the process-wide destination for compile-stage trace
// spans. Compilation is a process-level activity — the compile cache
// lets one compile serve many harness cells — so stage spans cannot
// ride a per-cell config; the CLI installs the sink once at startup.
var traceSink atomic.Pointer[obs.Trace]

// SetTraceSink routes compile-stage spans to t; nil disables emission.
func SetTraceSink(t *obs.Trace) { traceSink.Store(t) }

// traceStage emits a span for a compile stage that began at start.
func traceStage(name string, start time.Time) {
	if t := traceSink.Load(); t != nil {
		t.Span("compiler", name, 0, start, time.Since(start))
	}
}

// CompileStats records per-stage wall times and the headline decision
// counts of one compilation. Times are volatile (host-dependent);
// decision counts are deterministic for a given (source, Options).
type CompileStats struct {
	ParseNS  int64
	SemaNS   int64
	AccessNS int64
	LayoutNS int64
	LowerNS  int64
	FuseNS   int64

	Groups     int // metadata groups after coalescing
	Coalesced  int // members living in multi-member groups
	FusedHooks int
	Rules      int // insertion rules after fusion
}

// HandlerNames returns handler display names indexed by HandlerID:
// declared handlers in declaration order, then fused hooks.
func (a *Analysis) HandlerNames() []string {
	out := make([]string, 0, len(a.Info.HandlerOrder)+len(a.Fused))
	for _, h := range a.Info.HandlerOrder {
		out = append(out, h.Name)
	}
	for _, f := range a.Fused {
		out = append(out, f.Name)
	}
	return out
}

// categoryOf buckets an insertion rule by the program-event family it
// hooks; the overhead-attribution report aggregates hook cost by these.
func categoryOf(r *Rule) string {
	switch r.Kind {
	case MatchLoad, MatchStore:
		return "mem"
	case MatchAlloca:
		return "alloc"
	case MatchCallee:
		switch r.Callee {
		case "malloc", "calloc", "realloc", "free":
			return "alloc"
		}
		return "call"
	case MatchAnyCall:
		return "call"
	case MatchLock, MatchUnlock, MatchSpawn, MatchJoin:
		return "sync"
	case MatchCondBr, MatchCmp, MatchBinOp:
		return "ctrl"
	case MatchRet, MatchProgramStart, MatchProgramEnd:
		return "life"
	}
	return "other"
}

// HookCategories returns, indexed by HandlerID, the event category each
// handler attaches to ("mem", "alloc", "sync", "call", "ctrl", "life");
// a handler attached at points in different categories is "mixed", and
// a handler with no surviving rule (e.g. absorbed into a fused hook) is
// "other".
func (a *Analysis) HookCategories() []string {
	cats := make([]string, len(a.Info.HandlerOrder)+len(a.Fused))
	for i := range a.Rules {
		r := &a.Rules[i]
		c := categoryOf(r)
		if cur := cats[r.HandlerID]; cur == "" {
			cats[r.HandlerID] = c
		} else if cur != c {
			cats[r.HandlerID] = "mixed"
		}
	}
	for i, c := range cats {
		if c == "" {
			cats[i] = "other"
		}
	}
	return cats
}

// GroupTraffic is one keyed container's operation counters, labeled so
// metrics keys stay meaningful: g<id>.<impl>.<member>+<member>...
type GroupTraffic struct {
	Label string
	Stats meta.Stats
}

// GroupTraffic reports per-container operation counters for the
// runtime's keyed groups (globals have no container traffic).
func (rt *Runtime) GroupTraffic() []GroupTraffic {
	var out []GroupTraffic
	for _, gs := range rt.groups {
		if gs.g.Impl == ImplGlobal {
			continue
		}
		var s meta.Stats
		if gs.c != nil {
			s = gs.c.Stats()
		} else if gs.c2 != nil {
			s = gs.c2.Stats()
		}
		out = append(out, GroupTraffic{
			Label: fmt.Sprintf("g%d.%s.%s", gs.g.ID, gs.g.Impl, strings.Join(gs.g.MemberNames(), "+")),
			Stats: s,
		})
	}
	return out
}
