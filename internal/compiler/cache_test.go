package compiler

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestOptionsFingerprint(t *testing.T) {
	base := DefaultOptions()
	if base.Fingerprint() != DefaultOptions().Fingerprint() {
		t.Fatal("equal options must fingerprint equally")
	}
	seen := map[string]string{base.Fingerprint(): "default"}
	variants := map[string]Options{
		"ds-only": DSOnlyOptions(),
		"naive":   NaiveOptions(),
	}
	mutate := func(name string, f func(*Options)) {
		o := DefaultOptions()
		f(&o)
		variants[name] = o
	}
	mutate("no-coalesce", func(o *Options) { o.Coalesce = false })
	mutate("no-cse", func(o *Options) { o.CSE = false })
	mutate("no-fuse", func(o *Options) { o.FuseHandlers = false })
	mutate("profile-collect", func(o *Options) { o.ProfileCollect = true })
	mutate("gran-1", func(o *Options) { o.Granularity = 1 })
	mutate("shadow-thresh", func(o *Options) { o.ShadowFactorThreshold = 7 })
	mutate("bitset-max", func(o *Options) { o.BitSetMaxBytes = 64 })
	mutate("arraymap-max", func(o *Options) { o.ArrayMapMaxKeys = 16 })
	mutate("addrspace", func(o *Options) { o.AddrSpace = 1 << 20 })
	mutate("with-profile", func(o *Options) {
		o.Profile = &Profile{Counts: map[string]uint64{"m1": 5, "m2": 80}}
	})
	for name, o := range variants {
		fp := o.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Errorf("options %q and %q share fingerprint %q", name, prev, fp)
		}
		seen[fp] = name
	}
}

func TestCachedCompileSingleflight(t *testing.T) {
	ResetCompileCache()
	defer ResetCompileCache()
	var builds atomic.Int32
	build := func() (*Analysis, error) {
		builds.Add(1)
		return &Analysis{}, nil
	}
	const callers = 16
	results := make([]*Analysis, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			a, err := CachedCompile("x", DefaultOptions(), build)
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
			}
			results[i] = a
		}(i)
	}
	wg.Wait()
	if n := builds.Load(); n != 1 {
		t.Errorf("build ran %d times, want 1", n)
	}
	for i := 1; i < callers; i++ {
		if results[i] != results[0] {
			t.Errorf("caller %d got a different Analysis pointer", i)
		}
	}
	hits, misses, _ := CompileCacheStats()
	if misses != 1 || hits != callers-1 {
		t.Errorf("stats hits=%d misses=%d, want %d/1", hits, misses, callers-1)
	}

	// A different name or different options must compile separately.
	if _, err := CachedCompile("y", DefaultOptions(), build); err != nil {
		t.Fatal(err)
	}
	if _, err := CachedCompile("x", DSOnlyOptions(), build); err != nil {
		t.Fatal(err)
	}
	if n := builds.Load(); n != 3 {
		t.Errorf("build ran %d times after distinct keys, want 3", n)
	}
}

// TestCachedCompileProfileCaching pins the adaptive-loop cache
// contract: profile-carrying compiles are cached under the profile's
// canonical hash — a recompile with the same profile hits and returns
// the shared pointer, different counts miss, and only unhashable
// profiles bypass the cache entirely.
func TestCachedCompileProfileCaching(t *testing.T) {
	ResetCompileCache()
	defer ResetCompileCache()
	var builds atomic.Int32
	build := func() (*Analysis, error) {
		builds.Add(1)
		return &Analysis{}, nil
	}
	opts := DefaultOptions()
	opts.Profile = &Profile{Counts: map[string]uint64{"m": 1}}
	a1, _ := CachedCompile("x", opts, build)
	a2, _ := CachedCompile("x", opts, build)
	if builds.Load() != 1 {
		t.Errorf("same-profile recompile must hit the cache (builds=%d)", builds.Load())
	}
	if a1 != a2 {
		t.Error("same-profile recompile must return the shared Analysis")
	}

	// An equivalent profile (zero counts dropped, different map order)
	// canonicalizes to the same fingerprint: still a hit.
	equiv := DefaultOptions()
	equiv.Profile = &Profile{Counts: map[string]uint64{"m": 1, "zero": 0}}
	if a3, _ := CachedCompile("x", equiv, build); a3 != a1 {
		t.Error("equivalent profile (explicit zero count) must hit the same entry")
	}
	if builds.Load() != 1 {
		t.Errorf("equivalent profile recompiled (builds=%d)", builds.Load())
	}

	// Different counts select a different layout: miss.
	changed := DefaultOptions()
	changed.Profile = &Profile{Counts: map[string]uint64{"m": 2}}
	if a4, _ := CachedCompile("x", changed, build); a4 == a1 {
		t.Error("different profile counts must compile separately")
	}
	if builds.Load() != 2 {
		t.Errorf("different profile must miss (builds=%d)", builds.Load())
	}

	// Unhashable profiles (pathologically many members) still bypass.
	huge := DefaultOptions()
	huge.Profile = &Profile{Counts: make(map[string]uint64, MaxHashableProfileMembers+1)}
	for i := 0; i <= MaxHashableProfileMembers; i++ {
		huge.Profile.Counts[fmt.Sprintf("m%d", i)] = 1
	}
	b1, _ := CachedCompile("x", huge, build)
	b2, _ := CachedCompile("x", huge, build)
	if b1 == b2 {
		t.Error("unhashable profile compiles must return fresh analyses")
	}
	if builds.Load() != 4 {
		t.Errorf("unhashable profile must bypass the cache (builds=%d)", builds.Load())
	}
}

// TestCacheLRUEviction: inserting past the capacity evicts the least
// recently used key, a re-request of the victim recompiles, and the
// eviction counter tracks exactly the drops.
func TestCacheLRUEviction(t *testing.T) {
	ResetCompileCache()
	defer ResetCompileCache()
	defer SetCompileCacheCap(DefaultCompileCacheCap)
	SetCompileCacheCap(2)

	var builds atomic.Int32
	build := func() (*Analysis, error) {
		builds.Add(1)
		return &Analysis{}, nil
	}
	mustCompile := func(name string) *Analysis {
		t.Helper()
		a, err := CachedCompile(name, DefaultOptions(), build)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	a := mustCompile("a")
	mustCompile("b")
	// Touch "a" so "b" is the LRU victim when "c" arrives.
	if got := mustCompile("a"); got != a {
		t.Fatal("hit returned a different pointer")
	}
	mustCompile("c")
	if n := CompileCacheLen(); n != 2 {
		t.Fatalf("cache len = %d, want 2", n)
	}
	if _, _, ev := CompileCacheStats(); ev != 1 {
		t.Fatalf("evictions = %d, want 1", ev)
	}
	// "a" survived (recently used): hit. "b" was evicted: recompile.
	if got := mustCompile("a"); got != a {
		t.Error("recently-used entry was evicted")
	}
	pre := builds.Load()
	mustCompile("b")
	if builds.Load() != pre+1 {
		t.Errorf("evicted entry did not recompile (builds %d -> %d)", pre, builds.Load())
	}
}

// TestCacheCapShrinkEvicts: shrinking the capacity below the live
// population evicts immediately, oldest first.
func TestCacheCapShrinkEvicts(t *testing.T) {
	ResetCompileCache()
	defer ResetCompileCache()
	defer SetCompileCacheCap(DefaultCompileCacheCap)
	SetCompileCacheCap(8)
	build := func() (*Analysis, error) { return &Analysis{}, nil }
	for _, n := range []string{"a", "b", "c", "d"} {
		if _, err := CachedCompile(n, DefaultOptions(), build); err != nil {
			t.Fatal(err)
		}
	}
	SetCompileCacheCap(1)
	if n := CompileCacheLen(); n != 1 {
		t.Fatalf("cache len after shrink = %d, want 1", n)
	}
	if _, _, ev := CompileCacheStats(); ev != 3 {
		t.Fatalf("evictions = %d, want 3", ev)
	}
	// The survivor is the most recently used ("d"): requesting it hits.
	h0, _, _ := CompileCacheStats()
	if _, err := CachedCompile("d", DefaultOptions(), build); err != nil {
		t.Fatal(err)
	}
	if h1, _, _ := CompileCacheStats(); h1 != h0+1 {
		t.Error("most-recently-used entry did not survive the shrink")
	}
}

// TestCacheEvictionDoesNotBreakSingleflight: hammer a capacity-2 cache
// from many goroutines over a keyspace that forces constant eviction,
// with compiles that linger long enough to be evicted mid-flight.
// Every caller must still get a non-nil result, and callers that
// joined the same singleflight group must observe the same pointer.
// Run under -race this is the server-prerequisite concurrency proof.
func TestCacheEvictionDoesNotBreakSingleflight(t *testing.T) {
	ResetCompileCache()
	defer ResetCompileCache()
	defer SetCompileCacheCap(DefaultCompileCacheCap)
	SetCompileCacheCap(2)

	names := []string{"a", "b", "c", "d", "e"}
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				name := names[(g+i)%len(names)]
				a, err := CachedCompile(name, DefaultOptions(), func() (*Analysis, error) {
					return &Analysis{}, nil
				})
				if err != nil || a == nil {
					t.Errorf("CachedCompile(%s): a=%v err=%v", name, a, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	hits, misses, evicts := CompileCacheStats()
	if hits+misses != 16*200 {
		t.Errorf("hits+misses = %d, want %d", hits+misses, 16*200)
	}
	if evicts == 0 {
		t.Error("keyspace of 5 over capacity 2 produced no evictions")
	}
	if n := CompileCacheLen(); n > 2 {
		t.Errorf("cache len = %d exceeds capacity 2", n)
	}
}
