package compiler

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestOptionsFingerprint(t *testing.T) {
	base := DefaultOptions()
	if base.Fingerprint() != DefaultOptions().Fingerprint() {
		t.Fatal("equal options must fingerprint equally")
	}
	seen := map[string]string{base.Fingerprint(): "default"}
	variants := map[string]Options{
		"ds-only": DSOnlyOptions(),
		"naive":   NaiveOptions(),
	}
	mutate := func(name string, f func(*Options)) {
		o := DefaultOptions()
		f(&o)
		variants[name] = o
	}
	mutate("no-coalesce", func(o *Options) { o.Coalesce = false })
	mutate("no-cse", func(o *Options) { o.CSE = false })
	mutate("no-fuse", func(o *Options) { o.FuseHandlers = false })
	mutate("profile-collect", func(o *Options) { o.ProfileCollect = true })
	mutate("gran-1", func(o *Options) { o.Granularity = 1 })
	mutate("shadow-thresh", func(o *Options) { o.ShadowFactorThreshold = 7 })
	mutate("bitset-max", func(o *Options) { o.BitSetMaxBytes = 64 })
	mutate("arraymap-max", func(o *Options) { o.ArrayMapMaxKeys = 16 })
	mutate("addrspace", func(o *Options) { o.AddrSpace = 1 << 20 })
	mutate("with-profile", func(o *Options) {
		o.Profile = &Profile{Counts: map[string]uint64{"m1": 5, "m2": 80}}
	})
	for name, o := range variants {
		fp := o.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Errorf("options %q and %q share fingerprint %q", name, prev, fp)
		}
		seen[fp] = name
	}
}

func TestCachedCompileSingleflight(t *testing.T) {
	ResetCompileCache()
	defer ResetCompileCache()
	var builds atomic.Int32
	build := func() (*Analysis, error) {
		builds.Add(1)
		return &Analysis{}, nil
	}
	const callers = 16
	results := make([]*Analysis, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			a, err := CachedCompile("x", DefaultOptions(), build)
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
			}
			results[i] = a
		}(i)
	}
	wg.Wait()
	if n := builds.Load(); n != 1 {
		t.Errorf("build ran %d times, want 1", n)
	}
	for i := 1; i < callers; i++ {
		if results[i] != results[0] {
			t.Errorf("caller %d got a different Analysis pointer", i)
		}
	}
	hits, misses := CompileCacheStats()
	if misses != 1 || hits != callers-1 {
		t.Errorf("stats hits=%d misses=%d, want %d/1", hits, misses, callers-1)
	}

	// A different name or different options must compile separately.
	if _, err := CachedCompile("y", DefaultOptions(), build); err != nil {
		t.Fatal(err)
	}
	if _, err := CachedCompile("x", DSOnlyOptions(), build); err != nil {
		t.Fatal(err)
	}
	if n := builds.Load(); n != 3 {
		t.Errorf("build ran %d times after distinct keys, want 3", n)
	}
}

func TestCachedCompileProfileBypass(t *testing.T) {
	ResetCompileCache()
	defer ResetCompileCache()
	var builds atomic.Int32
	build := func() (*Analysis, error) {
		builds.Add(1)
		return &Analysis{}, nil
	}
	opts := DefaultOptions()
	opts.Profile = &Profile{Counts: map[string]uint64{"m": 1}}
	a1, _ := CachedCompile("x", opts, build)
	a2, _ := CachedCompile("x", opts, build)
	if builds.Load() != 2 {
		t.Errorf("profile-carrying compiles must bypass the cache (builds=%d)", builds.Load())
	}
	if a1 == a2 {
		t.Error("profile-carrying compiles must return fresh analyses")
	}
}
